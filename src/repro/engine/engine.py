"""The search engine: the execution layer between controller and evaluator.

:class:`SearchEngine` drives a :class:`~repro.core.fahana.FaHaNaSearch`
(or its MONAS subclass) through the same protocol as the original
sequential loop -- sample, produce, evaluate, observe -- but adds the three
scaling features the seed loop lacked:

1. **Batched parallel evaluation.**  Episodes are sampled up front in waves
   of ``batch_episodes`` children and evaluated concurrently on a pluggable
   worker pool.  Controller sampling draws from the sample-RNG stream and
   child weight initialisation from the child-RNG stream in strict episode
   order, and rewards are fed back to the policy trainer in episode order,
   so a run is bit-for-bit reproducible regardless of backend -- provided
   the wave size does not exceed ``PolicyGradientConfig.batch_episodes``
   (within one policy batch the controller's parameters are constant, which
   is exactly what makes the evaluations independent).

2. **Content-addressed memoization.**  With a cache configured, each sampled
   child is fingerprinted (descriptor ``cache_key()`` + evaluation context)
   before any model is built; repeats return the memoized result without
   training.  A cache-hit episode still consumes one child-RNG draw so the
   stream stays aligned with an uncached run.

3. **Checkpoint/resume.**  With a ``run_dir`` configured, the engine
   snapshots controller weights, optimiser/baseline state, both RNG streams,
   the cache and the search history at batch boundaries, and can restore a
   search mid-flight via :meth:`SearchEngine.resume`.

Every observable step is announced on an event bus (JSONL telemetry when a
run directory is configured).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import math

from repro.core.controller import ControllerSample
from repro.core.evaluator import ChildEvaluator, EvaluationResult
from repro.core.fahana import FaHaNaResult, FaHaNaSearch
from repro.core.pipeline import (
    FidelityConfig,
    PricingReport,
    snapshot_weights,
)
from repro.core.producer import ChildArchitecture
from repro.core.results import EpisodeRecord, SearchHistory
from repro.engine import checkpoint as checkpoint_io
from repro.engine.cache import EvaluationCache, SharedCacheTier
from repro.engine.events import (
    BATCH_FINISHED,
    CACHE_HIT,
    CHECKPOINT_WRITTEN,
    EARLY_STOPPED,
    EPISODE_FINISHED,
    GATE_REJECTED,
    METRICS_UPDATED,
    RUN_CANCELLED,
    RUN_FINISHED,
    RUN_STARTED,
    SPAN,
    STAGE_FINISHED,
    STORE_DEGRADED,
    WAVE_PROMOTED,
    WAVE_RESIZED,
    EngineEvent,
    EventBus,
    JsonlTelemetry,
)
from repro.engine import workers as workers_module
from repro.engine.workers import WorkerPool, create_pool, ensure_backend
from repro.obs import metrics as obs_metrics
from repro.obs.tracing import Tracer
from repro.store import LocalStore, RemoteStore, TieredStore
from repro.store.freeze import fingerprint_payload
from repro.utils.fingerprint import array_fingerprint, combine_fingerprints
from repro.zoo.descriptors import ArchitectureDescriptor


class StopToken:
    """Cooperative cancellation signal checked by the engine loop.

    ``request()`` flags the token in-process; a token constructed with a
    ``path`` is additionally set by the mere existence of that file, which is
    how another process (``repro-search cancel`` on a shared runs root)
    reaches a run it does not hold a thread handle to.  The engine honours a
    set token at the next wave boundary where no policy-gradient episodes are
    pending, writes its usual checkpoint and stops -- so a cancelled run is
    always resumable.
    """

    def __init__(self, path: Optional[str] = None):
        self._event = threading.Event()
        self.path = path

    def request(self) -> None:
        """Request cancellation (idempotent, thread-safe)."""
        self._event.set()

    def is_set(self) -> bool:
        """True once cancellation was requested (in-process or via the file)."""
        if self._event.is_set():
            return True
        if self.path is not None and os.path.exists(self.path):
            self._event.set()
            return True
        return False


@dataclass
class EngineConfig:
    """Execution knobs of the engine (orthogonal to the search's own config)."""

    backend: str = "serial"
    num_workers: int = 2
    # Episodes sampled and evaluated per wave; None uses the policy trainer's
    # batch size, which preserves exact sequential-loop semantics.
    batch_episodes: Optional[int] = None
    use_cache: bool = False
    cache: Optional[EvaluationCache] = None
    cache_capacity: int = 1024
    cache_dir: Optional[str] = None
    # Shared artifact store (repro.store).  Either implies caching: a local
    # store root is shared by every run pointed at it on this host, a store
    # URL adds the daemon's cross-host tier.  Both set builds the full
    # local-first/remote-fallback tiering.
    store_root: Optional[str] = None
    store_url: Optional[str] = None
    run_dir: Optional[str] = None
    # Write a checkpoint whenever at least this many episodes completed since
    # the last one (0 = only the final checkpoint, when run_dir is set).
    checkpoint_every: int = 0
    telemetry: bool = True
    # Process backend only: ship the evaluator to each worker process once at
    # pool startup (executor initializer) instead of re-pickling it per task.
    share_evaluator: bool = True
    # Process backend only: BLAS/OpenMP threads *per worker process* (the
    # pool initializer pins OMP_NUM_THREADS/OPENBLAS_NUM_THREADS and the
    # OpenBLAS runtime).  N workers x M BLAS threads quickly oversubscribes
    # the cores; 1 is the right setting whenever num_workers is sized to the
    # machine.  None leaves the workers' BLAS threading untouched.
    blas_threads_per_worker: Optional[int] = 1

    def __post_init__(self) -> None:
        ensure_backend(self.backend)  # ValueError on unknown names
        if self.num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if self.batch_episodes is not None and self.batch_episodes <= 0:
            raise ValueError("batch_episodes must be positive when given")
        if self.cache_capacity <= 0:
            raise ValueError("cache_capacity must be positive")
        if self.checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        if self.blas_threads_per_worker is not None and self.blas_threads_per_worker <= 0:
            raise ValueError("blas_threads_per_worker must be positive when given")


# -- module-level default (installed by harnesses, e.g. the benchmark suite) -------
_default_engine_config: Optional[EngineConfig] = None


def set_default_engine_config(
    config: Optional[EngineConfig],
) -> Optional[EngineConfig]:
    """Install a process-wide default engine config; returns the previous one."""
    global _default_engine_config
    previous = _default_engine_config
    _default_engine_config = config  # repro-lint: disable=THR001 -- configured from the driving thread before workers start; single-name rebind is atomic under the GIL
    return previous


def get_default_engine_config() -> Optional[EngineConfig]:
    """The currently installed process-wide default (None when unset)."""
    return _default_engine_config


def resolve_engine_config(explicit: Optional[EngineConfig] = None) -> EngineConfig:
    """Pick the engine config: explicit > process default > plain serial."""
    if explicit is not None:
        return explicit
    if _default_engine_config is not None:
        return _default_engine_config
    return EngineConfig()


@dataclass
class _EpisodeJob:
    """One episode of a wave, from sample to evaluation."""

    episode: int
    sample: ControllerSample
    descriptor: ArchitectureDescriptor
    cache_key: Optional[str] = None
    child: Optional[ChildArchitecture] = None
    evaluation: Optional[EvaluationResult] = None
    cache_hit: bool = False
    worker: str = ""
    elapsed_seconds: float = 0.0
    # Staged-pipeline state (multi-fidelity runs only).
    pricing: Optional[PricingReport] = None
    initial_weights: Optional[Dict[str, Any]] = None
    stage_result: Optional[EvaluationResult] = None
    stage_cached: bool = False
    stage_worker: str = ""
    stages: List[str] = field(default_factory=list)


def _evaluate_payload(
    payload: Tuple[Optional[ChildEvaluator], ChildArchitecture],
) -> Tuple[EvaluationResult, float, float]:
    """Worker task: evaluate one child (module-level so it pickles).

    ``evaluator`` is None when the pool shipped it to the worker process once
    at startup (``EngineConfig.share_evaluator``); it is then read back from
    the worker's shared slot instead of travelling with every task.  Returns
    ``(result, elapsed_seconds, wall_start)`` -- the wall-clock start lets
    the engine record the training as a tracer span on the worker's own
    timeline, which is what makes a trace show the wave's real parallelism.
    """
    evaluator, child = payload
    if evaluator is None:
        evaluator = workers_module.process_shared()
    wall_start = time.time()  # repro-lint: disable=DET001 -- telemetry wall-clock timestamp surfaced in events; never enters results or cache keys
    start = time.perf_counter()
    result = evaluator.evaluate(child)
    return result, time.perf_counter() - start, wall_start


def _evaluate_stage_payload(
    payload: Tuple[
        Optional[ChildEvaluator],
        ChildArchitecture,
        str,
        Optional[PricingReport],
        Optional[Dict[str, Any]],
    ],
) -> Tuple[EvaluationResult, float, float]:
    """Worker task: train one child at one fidelity stage (staged runs).

    ``initial_weights`` is the snapshot taken before the child's first stage;
    restoring it makes every stage train from the same initial weights
    regardless of backend (in-process pools mutate the parent's model, the
    process pool trains a pickled copy).  Returns
    ``(result, elapsed_seconds, wall_start)`` like :func:`_evaluate_payload`."""
    evaluator, child, fidelity_name, pricing, initial_weights = payload
    if evaluator is None:
        evaluator = workers_module.process_shared()
    pipeline = evaluator.pipeline
    fidelity = pipeline.fidelity(fidelity_name)
    wall_start = time.time()  # repro-lint: disable=DET001 -- telemetry wall-clock timestamp surfaced in events; never enters results or cache keys
    start = time.perf_counter()
    result = pipeline.train_and_score(
        child, fidelity, pricing=pricing, restore_from=initial_weights
    )
    return result, time.perf_counter() - start, wall_start


class SearchEngine:
    """Executes a FaHaNa/MONAS search with batching, caching and checkpoints."""

    def __init__(
        self,
        search: FaHaNaSearch,
        config: Optional[EngineConfig] = None,
        stop_token: Optional[StopToken] = None,
    ):
        self.search = search
        self.config = config or EngineConfig()
        self.events = EventBus()
        self.stop_token = stop_token or StopToken()
        self.cancelled = False
        self.cache = self._build_cache()
        # Computed on first use: hashing the datasets and backbone weights is
        # O(bytes) work the default no-cache/no-checkpoint path never needs.
        self._context_key: Optional[str] = None
        self.evaluations_run = 0
        self.evaluations_by_fidelity: Dict[str, int] = {}
        self.checkpoints_written = 0
        self.early_stopped = False
        # Reward-plateau tracking (seeded from a restored history on resume).
        self._best_reward = float("-inf")
        self._best_episode = -1
        self._restored_history: Optional[SearchHistory] = None
        self._restored_seconds = 0.0
        self._next_episode = 0
        self._telemetry: Optional[JsonlTelemetry] = None
        if self.config.run_dir is not None:
            os.makedirs(self.config.run_dir, exist_ok=True)
            if self.config.telemetry:
                self._telemetry = JsonlTelemetry(
                    os.path.join(self.config.run_dir, "telemetry.jsonl")
                )
                self.events.subscribe(self._telemetry)
        # Per-run metric registry mirroring into the process-global one: each
        # instrumentation write lands in both, so the run's RunReport.metrics
        # snapshot and the daemon's fleet-wide /metrics share one write path.
        # Observability observes, it never steers: nothing below touches
        # cache_key(), the context fingerprint or either RNG stream.
        self.metrics = obs_metrics.MetricsRegistry(parent=obs_metrics.get_registry())
        if self.cache is not None:
            self.cache.bind_metrics(self.metrics)
            self.cache.bind_events(self._emit_cache_event)
        self.tracer = Tracer(self._emit_span)
        if self.cache is not None:
            self.cache.bind_tracer(self.tracer)
        self._m_waves = self.metrics.counter(
            "repro_engine_waves_total", "Waves completed"
        )
        self._m_wave_seconds = self.metrics.histogram(
            "repro_engine_wave_seconds", "Wall time per wave (sample to observe)"
        )
        self._m_episodes = self.metrics.counter(
            "repro_engine_episodes_total",
            "Episodes finished, by outcome",
            labelnames=("result",),
        )
        self._m_eps = self.metrics.gauge(
            "repro_engine_episodes_per_second",
            "Episodes completed per wall second (current run)",
        )
        self._m_best = self.metrics.gauge(
            "repro_engine_best_reward", "Best Eq.1 reward observed so far"
        )
        self._m_promotions = self.metrics.counter(
            "repro_engine_promotions_total",
            "Children promoted to a higher fidelity stage",
        )
        self._m_evaluations = self.metrics.counter(
            "repro_engine_evaluations_total",
            "Worker evaluations run, by fidelity",
            labelnames=("fidelity",),
        )

    # -- construction helpers -----------------------------------------------------
    def _build_cache(self) -> Optional[EvaluationCache]:
        config = self.config
        tier = self._build_store_tier()
        if config.cache is not None:
            if tier is not None and config.cache.tier is None:
                config.cache.tier = tier
            return config.cache
        if config.use_cache or config.cache_dir is not None or tier is not None:
            return EvaluationCache(
                capacity=config.cache_capacity,
                directory=config.cache_dir,
                tier=tier,
            )
        return None

    def _build_store_tier(self) -> Optional[SharedCacheTier]:
        """The shared memoization tier, when a store is configured.

        ``store_root`` alone shares results across runs/processes on one
        host through the filesystem; ``store_url`` adds (or is) the daemon's
        cross-host tier.  Remote faults degrade inside the tiered store --
        the engine only hears about it once, as a ``store-degraded`` event.
        """
        config = self.config
        if config.store_root is None and config.store_url is None:
            return None
        local = (
            LocalStore(config.store_root) if config.store_root is not None else None
        )
        remote = (
            RemoteStore(config.store_url) if config.store_url is not None else None
        )
        store = TieredStore(
            local=local, remote=remote, on_degraded=self._on_store_degraded
        )
        return SharedCacheTier(store)

    def _on_store_degraded(self, info: Dict[str, Any]) -> None:
        self._emit(STORE_DEGRADED, payload=info)

    def _emit_cache_event(self, kind: str, payload: Dict[str, Any]) -> None:
        self._emit(kind, payload=payload)

    @property
    def context_key(self) -> str:
        """The evaluation-context fingerprint (computed lazily, then cached)."""
        if self._context_key is None:
            self._context_key = self._compute_context_key()
        return self._context_key

    def _compute_context_key(self) -> str:
        """Fingerprint of everything besides the descriptor that shapes a result.

        Fairness metrics depend on the demographic group arrays, and a
        trained child's accuracy depends on the frozen-prefix weights copied
        from the pre-trained backbone, so both are part of the context: runs
        that differ only in group assignment or backbone pre-training must
        not share cache entries.
        """
        search = self.search
        evaluator = search.evaluator
        # Read from the live pipeline (what actually runs), not the config
        # object -- the two could otherwise drift if a search subclass swaps
        # configurations after construction.
        pipeline = evaluator.pipeline
        backbone_model = search.producer.backbone_model
        backbone_weights = (
            None
            if backbone_model is None
            else {
                name: array_fingerprint(value)
                for name, value in sorted(backbone_model.state_dict().items())
            }
        )
        # Default-valued precision knobs are dropped from the payload so the
        # fingerprints of every pre-existing run (and on-disk cache entry)
        # survive the knobs' introduction; a non-default precision genuinely
        # changes trained results and re-keys the context.  (The float64
        # kernel rewrite itself keeps fingerprints: rewards derive from
        # discrete prediction counts, which the rewrite preserves -- the
        # conv contractions' last-ulp loss drift at large shapes is bounded
        # and tracked by benchmarks/bench_nn.py.)
        training_context = asdict(pipeline.training)
        for knob in ("precision", "inference_batch_size"):
            if training_context.get(knob) is None:
                training_context.pop(knob, None)
        # fingerprint_payload keeps the historical content_fingerprint keys
        # for this JSON-shaped payload, and deterministically freezes any
        # richer objects (custom datasets, injected callables) a subclassed
        # search may have put into its context.
        return fingerprint_payload(
            {
                "training": training_context,
                "reward": asdict(pipeline.reward),
                "bypass_invalid": pipeline.bypass_invalid,
                "device": evaluator.latency_estimator.device.name,
                "resolution": evaluator.latency_estimator.resolution,
                "width_multiplier": search.config.producer.width_multiplier,
                "split_block": search.producer.split_block,
                "backbone_weights": backbone_weights,
                # Gate limits invalidate cached results when they change (a
                # rejected child under a tight budget may train under a loose
                # one); the fidelity ladder deliberately does not -- each
                # stage's budget is part of the per-fidelity cache key, so
                # full-fidelity results are shared across schedules.
                "max_parameters": pipeline.settings.max_parameters,
                "max_storage_mb": pipeline.settings.max_storage_mb,
                "num_classes": search.train_dataset.num_classes,
                "train_data": array_fingerprint(search.train_dataset.images),
                "train_labels": array_fingerprint(search.train_dataset.labels),
                "train_groups": array_fingerprint(search.train_dataset.groups),
                "validation_data": array_fingerprint(search.validation_dataset.images),
                "validation_labels": array_fingerprint(
                    search.validation_dataset.labels
                ),
                "validation_groups": array_fingerprint(
                    search.validation_dataset.groups
                ),
                "group_names": list(search.validation_dataset.group_names),
            }
        )

    def child_cache_key(
        self,
        descriptor: ArchitectureDescriptor,
        fidelity: Optional[FidelityConfig] = None,
    ) -> str:
        """Cache key of one child under this engine's evaluation context.

        Keys are fidelity-aware: a proxy result (reduced epochs or data) and
        a full-fidelity result of the same child never collide.  Full-budget
        stages keep the historical two-part key, so full results are shared
        between staged and single-stage runs of the same configuration.
        """
        base = combine_fingerprints(descriptor.cache_key(), self.context_key)
        if fidelity is None or fidelity.is_full:
            return base
        return combine_fingerprints(base, fidelity.fingerprint())

    @property
    def cache_hits(self) -> int:
        return self.cache.hits if self.cache is not None else 0

    # -- checkpoint / resume ------------------------------------------------------
    def restore(self, run_dir: Optional[str] = None) -> int:
        """Load a checkpoint and position the engine to continue from it.

        Returns the next episode index.  Must be called before :meth:`run` on
        a freshly constructed search configured identically to the one that
        wrote the checkpoint.
        """
        directory = run_dir or self.config.run_dir
        if directory is None:
            raise ValueError("restore needs a run directory (config.run_dir or arg)")
        checkpoint = checkpoint_io.load_checkpoint(directory)
        next_episode, history = checkpoint_io.restore_checkpoint(
            checkpoint,
            context_key=self.context_key,
            controller=self.search.controller,
            policy_trainer=self.search.policy_trainer,
            sample_rng=self.search._sample_rng,
            child_rng=self.search._child_rng,
            cache=self.cache,
        )
        self._restored_history = history
        self._restored_seconds = history.total_seconds
        self._next_episode = next_episode
        return next_episode

    @classmethod
    def resume(
        cls, search: FaHaNaSearch, config: Optional[EngineConfig] = None
    ) -> "SearchEngine":
        """Construct an engine and restore the checkpoint in its run directory."""
        engine = cls(search, config)
        engine.restore()
        return engine

    def _write_checkpoint(self, history: SearchHistory, elapsed: float) -> None:
        assert self.config.run_dir is not None
        history.total_seconds = self._restored_seconds + elapsed
        path = checkpoint_io.save_checkpoint(
            self.config.run_dir,
            next_episode=self._next_episode,
            context_key=self.context_key,
            controller=self.search.controller,
            policy_trainer=self.search.policy_trainer,
            sample_rng=self.search._sample_rng,
            child_rng=self.search._child_rng,
            history=history,
            cache=self.cache,
        )
        self.checkpoints_written += 1
        self._emit(
            CHECKPOINT_WRITTEN,
            payload={"path": path, "next_episode": self._next_episode},
        )

    # -- engine-level scheduling ---------------------------------------------------
    @property
    def pipeline(self):
        """The evaluator's staged evaluation pipeline."""
        return self.search.evaluator.pipeline

    @property
    def staged(self) -> bool:
        """True when the pipeline has proxy fidelities (promotion applies)."""
        return self.pipeline.settings.staged

    def _note_reward(self, episode: int, reward: float) -> None:
        """Track the best reward for plateau detection."""
        delta = getattr(self.search.config, "plateau_delta", 0.0)
        if reward > self._best_reward + delta or self._best_episode < 0:
            self._best_reward = max(self._best_reward, reward)
            self._best_episode = episode

    def _plateaued(self) -> bool:
        """True once the best reward stalled for ``plateau_patience`` episodes."""
        patience = getattr(self.search.config, "plateau_patience", None)
        if patience is None or self._next_episode == 0:
            return False
        return self._next_episode - 1 - self._best_episode >= patience

    def _update_wave_size(self, jobs: List[_EpisodeJob], base: int, cap: int) -> None:
        """Adapt the wave size to the cost of the wave that just finished.

        Waves double while at least half their episodes were free -- cheap
        episodes may as well batch up -- and halve back toward the configured
        size once every episode paid for a training run.  "Free" always
        includes gate rejections; cache hits count as free only on
        single-fidelity runs, where wave size cannot change results.  On
        staged runs the wave size shapes promotion cohorts, so the rule must
        read evaluation *outcomes* (identical between a cold run and a warm
        cache replay), never cache state.
        """
        staged = self.staged
        trained = sum(
            1
            for job in jobs
            if job.evaluation.trained and (staged or not job.cache_hit)
        )
        wave = len(jobs)
        previous = self._wave_size
        if trained * 2 <= wave:
            self._wave_size = min(self._wave_size * 2, cap)
        elif trained == wave:
            self._wave_size = max(base, self._wave_size // 2)
        if self._wave_size != previous:
            self._emit(
                WAVE_RESIZED,
                payload={
                    "wave_size": self._wave_size,
                    "previous": previous,
                    "trained": trained,
                },
            )

    # -- the search loop ----------------------------------------------------------
    def run(self, episodes: Optional[int] = None) -> FaHaNaResult:
        """Run (or continue) the search up to ``episodes`` total episodes."""
        search = self.search
        num_episodes = episodes or search.config.episodes
        policy_batch = search.config.policy.batch_episodes
        wave_size = self.config.batch_episodes or policy_batch
        if wave_size > policy_batch:
            # A wave samples all its children before any reward is observed;
            # beyond the policy batch the sequential loop would already have
            # updated the controller, so the runs would silently diverge.
            raise ValueError(
                f"engine batch_episodes ({wave_size}) must not exceed the "
                f"policy-gradient batch_episodes ({policy_batch}); raise "
                "PolicyGradientConfig.batch_episodes to evaluate larger waves"
            )
        adaptive = getattr(search.config, "adaptive_wave", False)
        self._wave_size = wave_size
        staged = self.staged
        if (
            staged
            and wave_size == 1
            and any(f.promote_fraction < 1.0 for f in self.pipeline.fidelities[:-1])
        ):
            # A one-child wave promotes its only valid child every time, so
            # each episode would pay for proxy AND full training -- strictly
            # worse than the single-stage pipeline it is meant to beat.
            raise ValueError(
                "a multi-fidelity ladder needs waves of at least 2 episodes "
                "to promote a strict subset; raise search.policy_batch (and "
                "optionally engine.batch_episodes), or set every "
                "promote_fraction to 1.0 if training all children at every "
                "fidelity is intended"
            )

        if self._restored_history is not None:
            history = self._restored_history
            for record in history.records:
                self._note_reward(record.episode, record.reward)
        else:
            history = SearchHistory(
                space_size=search.producer.space_size(),
                full_space_size=search.producer.full_space_size(),
                frozen_blocks=search.producer.split_block,
                searchable_blocks=len(search.producer.positions),
            )
        self._emit(
            RUN_STARTED,
            payload={
                "backend": self.config.backend,
                "episodes": num_episodes,
                "start_episode": self._next_episode,
                "wave_size": wave_size,
                "cache": self.cache is not None,
                "staged": staged,
                "fidelities": [f.name for f in self.pipeline.fidelities],
            },
        )

        start = time.perf_counter()
        start_episode = self._next_episode
        episodes_since_checkpoint = 0
        shared = (
            search.evaluator
            if self.config.backend == "process" and self.config.share_evaluator
            else None
        )
        pool = create_pool(
            self.config.backend,
            self.config.num_workers,
            shared=shared,
            blas_threads=self.config.blas_threads_per_worker,
            metrics=self.metrics,
            events=self.events.emit,
        )
        try:
            while self._next_episode < num_episodes:
                if (
                    self.stop_token.is_set()
                    and search.policy_trainer.pending_episodes == 0
                ):
                    # A boundary with no pending episodes is exactly a
                    # checkpointable state; with pending episodes the loop
                    # runs further waves (at most one policy batch) first.
                    self.cancelled = True
                    self._emit(
                        RUN_CANCELLED,
                        payload={
                            "episodes_done": self._next_episode,
                            "episodes": num_episodes,
                        },
                    )
                    break
                if self._plateaued():
                    self.early_stopped = True
                    self._emit(
                        EARLY_STOPPED,
                        payload={
                            "episodes_done": self._next_episode,
                            "best_episode": self._best_episode,
                            "best_reward": self._best_reward,
                            "patience": search.config.plateau_patience,
                        },
                    )
                    break
                wave = min(self._wave_size, num_episodes - self._next_episode)
                if adaptive:
                    # Adaptive waves stay aligned to policy-batch boundaries so
                    # resizing never changes when the controller updates.
                    boundary = policy_batch - (self._next_episode % policy_batch)
                    wave = min(wave, boundary)
                wave_start = time.perf_counter()
                with self.tracer.span(
                    "wave", episode=self._next_episode, wave=wave
                ):
                    with self.tracer.span("sample", episode=self._next_episode):
                        jobs = self._sample_wave(wave)
                    if staged:
                        self._evaluate_wave_staged(jobs, pool)
                    else:
                        with self.tracer.span("evaluate", episode=self._next_episode):
                            self._evaluate_wave(jobs, pool)
                    with self.tracer.span("observe", episode=self._next_episode):
                        for job in jobs:
                            self._observe(job, history)
                self._next_episode += wave
                episodes_since_checkpoint += wave
                self._note_wave_metrics(
                    wave_seconds=time.perf_counter() - wave_start,
                    elapsed=time.perf_counter() - start,
                    start_episode=start_episode,
                )
                self._emit(
                    BATCH_FINISHED,
                    payload={
                        "episodes_done": self._next_episode,
                        "wave": wave,
                        "backend": pool.name,
                    },
                )
                if adaptive:
                    self._update_wave_size(jobs, base=wave_size, cap=policy_batch)
                if (
                    self.config.run_dir is not None
                    and self.config.checkpoint_every > 0
                    and episodes_since_checkpoint >= self.config.checkpoint_every
                    and search.policy_trainer.pending_episodes == 0
                ):
                    with self.tracer.span("checkpoint"):
                        self._write_checkpoint(history, time.perf_counter() - start)
                    episodes_since_checkpoint = 0
        finally:
            pool.close()

        search.policy_trainer.apply_update()
        history.total_seconds = self._restored_seconds + time.perf_counter() - start
        if self.config.run_dir is not None:
            self._write_checkpoint(history, time.perf_counter() - start)
        self._emit(
            RUN_FINISHED,
            payload={
                "episodes": len(history),
                "evaluations_run": self.evaluations_run,
                "evaluations_by_fidelity": dict(self.evaluations_by_fidelity),
                "cache_hits": self.cache_hits,
                "early_stopped": self.early_stopped,
                "cancelled": self.cancelled,
                "total_seconds": history.total_seconds,
            },
        )
        if self._telemetry is not None:
            # Release the line-buffered handle; it reopens on any later event.
            self._telemetry.close()
        return FaHaNaResult(
            history=history,
            best=history.best_record(),
            fairest=history.fairest_record(),
            smallest=history.smallest_record(),
            freezing_analysis=search.producer.analysis,
        )

    # -- wave phases --------------------------------------------------------------
    def _sample_wave(self, wave: int) -> List[_EpisodeJob]:
        """Sample/produce ``wave`` children in strict episode order.

        In staged (multi-fidelity) runs the per-child cache lookups happen at
        each fidelity stage instead of here: an episode's final result then
        depends on wave-relative promotion, so sample-time short-circuiting
        would make cached and uncached runs diverge.
        """
        search = self.search
        jobs: List[_EpisodeJob] = []
        for offset in range(wave):
            episode = self._next_episode + offset
            sample = search.controller.sample(rng=search._sample_rng)
            descriptor = search.producer.describe_child(sample.decisions)
            job = _EpisodeJob(episode=episode, sample=sample, descriptor=descriptor)
            if self.cache is not None and not self.staged:
                job.cache_key = self.child_cache_key(descriptor)
                cached = self.cache.get(job.cache_key)
                if cached is not None:
                    # Burn the draw produce() would have made so the child-RNG
                    # stream stays aligned with a cache-off run.
                    search._child_rng.integers(0, 2**31 - 1)
                    job.evaluation = cached
                    job.cache_hit = True
                    job.worker = "cache"
                    self._emit(
                        CACHE_HIT,
                        episode=episode,
                        payload={"key": job.cache_key, "reward": cached.reward},
                    )
                    jobs.append(job)
                    continue
            job.child = search.producer.produce(sample.decisions, rng=search._child_rng)
            jobs.append(job)
        return jobs

    def _evaluate_wave(self, jobs: List[_EpisodeJob], pool: WorkerPool) -> None:
        """Evaluate the wave's cache misses concurrently, in episode order.

        When caching is on, duplicate children *within* one wave train only
        once: the first occurrence is evaluated and the repeats share its
        result, exactly as they would have hit the cache with wave size 1.
        (With caching off every child trains, matching the sequential loop.)
        """
        pending = [job for job in jobs if job.evaluation is None]
        first_by_key: Dict[str, _EpisodeJob] = {}
        unique: List[_EpisodeJob] = []
        for job in pending:
            if job.cache_key is not None and job.cache_key in first_by_key:
                continue
            if job.cache_key is not None:
                first_by_key[job.cache_key] = job
            unique.append(job)
        if unique:
            # Pools that shipped the evaluator at startup get child-only
            # payloads; the worker reads the evaluator from its shared slot.
            evaluator = None if pool.uses_shared else self.search.evaluator
            payloads = [(evaluator, job.child) for job in unique]
            results = pool.map_ordered(_evaluate_payload, payloads)
            for job, ((evaluation, elapsed, started), worker) in zip(unique, results):
                job.evaluation = evaluation
                job.worker = worker
                job.elapsed_seconds = elapsed
                self.evaluations_run += 1
                self._m_evaluations.labels(fidelity=evaluation.fidelity).inc()
                self.tracer.record(
                    "train",
                    start=started,
                    duration=elapsed,
                    tid=worker,
                    episode=job.episode,
                )
                if evaluation.trained:
                    self.evaluations_by_fidelity[evaluation.fidelity] = (
                        self.evaluations_by_fidelity.get(evaluation.fidelity, 0) + 1
                    )
                if self.cache is not None and job.cache_key is not None:
                    self.cache.put(job.cache_key, evaluation)
        for job in pending:
            if job.evaluation is None:  # an intra-wave repeat
                primary = first_by_key[job.cache_key]
                job.evaluation = primary.evaluation
                job.cache_hit = True
                job.worker = "cache"
                self._emit(
                    CACHE_HIT,
                    episode=job.episode,
                    payload={"key": job.cache_key, "reward": job.evaluation.reward},
                )

    # -- the staged (multi-fidelity) wave ------------------------------------------
    def _evaluate_wave_staged(self, jobs: List[_EpisodeJob], pool: WorkerPool) -> None:
        """Drive one wave through gates and the fidelity ladder.

        Gate stages run in the engine (pricing needs only the descriptor and
        the offline latency table), so gate rejections never reach a worker
        and do not count toward ``evaluations_run`` -- unlike the
        single-stage path, where the worker prices (and counts) them.  Each
        fidelity stage trains the current survivors on the worker pool, then
        promotes the top ``promote_fraction`` of the wave's valid children to
        the next stage.
        Children that stop early keep their proxy-stage result as the
        episode's reward -- the staged generalisation of the paper's "price
        before train" refusal.  Cache lookups are per (child, fidelity), so
        replays skip the training without changing any promotion decision.
        """
        pipeline = self.pipeline
        survivors: List[_EpisodeJob] = []
        with self.tracer.span("gates"):
            for job in jobs:
                pricing = pipeline.price(job.descriptor)
                job.pricing = pricing
                if not pricing.passed and pipeline.bypass_invalid:
                    job.evaluation = pipeline.rejection_result(pricing)
                    job.stages = [
                        f"gate:{outcome.gate}" for outcome in pricing.failures()
                    ]
                    job.worker = "gate"
                    self._emit(
                        GATE_REJECTED,
                        episode=job.episode,
                        payload={
                            "gates": [outcome.gate for outcome in pricing.failures()],
                            "latency_ms": pricing.latency_ms,
                        },
                    )
                else:
                    survivors.append(job)
        if len(pipeline.fidelities) > 1 and self.config.backend != "process":
            # Promotion re-trains later stages from the child's initial
            # weights, which in-process proxy training would otherwise have
            # mutated.  Process workers train a pickled copy, so the parent's
            # model already holds the initial weights and shipping a snapshot
            # would double every promoted task's payload for no effect.
            for job in survivors:
                job.initial_weights = snapshot_weights(job.child.model)

        stages = pipeline.fidelities
        for index, fidelity in enumerate(stages):
            if not survivors:
                break
            is_last = index == len(stages) - 1
            with self.tracer.span(
                f"stage:{fidelity.name}", children=len(survivors)
            ):
                evaluated = self._run_stage(survivors, fidelity, index, pool)
            self._emit(
                STAGE_FINISHED,
                payload={
                    "stage": fidelity.name,
                    "children": len(survivors),
                    "evaluated": evaluated,
                    "cached": len(survivors) - evaluated,
                },
            )
            for job in survivors:
                job.stages.append(fidelity.name)
            if is_last:
                for job in survivors:
                    self._finalize_staged_job(job)
                break
            with self.tracer.span("promotion"):
                ranked = sorted(
                    survivors, key=lambda job: (-job.stage_result.reward, job.episode)
                )
                eligible = [job for job in ranked if job.stage_result.is_valid]
                # The quota is a fraction of the wave's *valid* children:
                # invalid proxy results can never win, so they neither advance
                # nor pad the promotion budget of the children that can.
                quota = (
                    max(1, math.ceil(len(eligible) * fidelity.promote_fraction))
                    if eligible
                    else 0
                )
                promoted = eligible[:quota]
                promoted_ids = {id(job) for job in promoted}
                for job in survivors:
                    if id(job) not in promoted_ids:
                        self._finalize_staged_job(job)
            self._m_promotions.inc(len(promoted))
            self._emit(
                WAVE_PROMOTED,
                payload={
                    "stage": fidelity.name,
                    "next_stage": stages[index + 1].name,
                    "promoted": [job.episode for job in promoted],
                    "stopped": len(survivors) - len(promoted),
                },
            )
            survivors = promoted

    def _run_stage(
        self,
        survivors: List[_EpisodeJob],
        fidelity: FidelityConfig,
        stage_index: int,
        pool: WorkerPool,
    ) -> int:
        """Evaluate one fidelity stage for ``survivors``; returns trainings run.

        With caching on, duplicate children within the wave train once per
        stage and share the result, exactly as they would across waves
        through the cache; with caching off every survivor trains, matching
        the cache-off single-fidelity semantics.
        """
        for job in survivors:
            job.stage_result = None
            job.stage_cached = False
            job.stage_worker = ""
            job.cache_key = (
                self.child_cache_key(job.descriptor, fidelity)
                if self.cache is not None
                else None
            )
            if self.cache is not None:
                cached = self.cache.get(job.cache_key)
                if cached is not None:
                    job.stage_result = cached
                    job.stage_cached = True
                    job.stage_worker = "cache"
                    self._emit(
                        CACHE_HIT,
                        episode=job.episode,
                        payload={
                            "key": job.cache_key,
                            "stage": fidelity.name,
                            "reward": cached.reward,
                        },
                    )

        first_by_key: Dict[str, _EpisodeJob] = {}
        unique: List[_EpisodeJob] = []
        for job in survivors:
            if job.stage_result is not None:
                continue
            if self.cache is None:
                unique.append(job)
                continue
            dedupe_key = combine_fingerprints(job.descriptor.cache_key(), fidelity.name)
            if dedupe_key in first_by_key:
                continue
            first_by_key[dedupe_key] = job
            unique.append(job)
        if unique:
            evaluator = None if pool.uses_shared else self.search.evaluator
            payloads = [
                (
                    evaluator,
                    job.child,
                    fidelity.name,
                    job.pricing,
                    job.initial_weights if stage_index > 0 else None,
                )
                for job in unique
            ]
            results = pool.map_ordered(_evaluate_stage_payload, payloads)
            for job, ((evaluation, elapsed, started), worker) in zip(unique, results):
                job.stage_result = evaluation
                job.stage_worker = worker
                job.elapsed_seconds += elapsed
                self.evaluations_run += 1
                self._m_evaluations.labels(fidelity=fidelity.name).inc()
                self.tracer.record(
                    f"train:{fidelity.name}",
                    start=started,
                    duration=elapsed,
                    tid=worker,
                    episode=job.episode,
                )
                self.evaluations_by_fidelity[fidelity.name] = (
                    self.evaluations_by_fidelity.get(fidelity.name, 0) + 1
                )
                if self.cache is not None and job.cache_key is not None:
                    self.cache.put(job.cache_key, evaluation)
        for job in survivors:
            if job.stage_result is None:  # an intra-wave repeat
                dedupe_key = combine_fingerprints(
                    job.descriptor.cache_key(), fidelity.name
                )
                primary = first_by_key[dedupe_key]
                job.stage_result = primary.stage_result
                job.stage_cached = True
                job.stage_worker = "cache"
                self._emit(
                    CACHE_HIT,
                    episode=job.episode,
                    payload={
                        "key": job.cache_key,
                        "stage": fidelity.name,
                        "reward": job.stage_result.reward,
                    },
                )
        return len(unique)

    def _finalize_staged_job(self, job: _EpisodeJob) -> None:
        """Freeze a staged job's current stage result as the episode outcome."""
        job.evaluation = job.stage_result
        job.cache_hit = job.stage_cached
        job.worker = job.stage_worker

    def _observe(self, job: _EpisodeJob, history: SearchHistory) -> None:
        """Feed one episode's reward back and record it (episode order)."""
        assert job.evaluation is not None
        evaluation = job.evaluation
        self.search.policy_trainer.observe(job.sample, evaluation.reward)
        self._note_reward(job.episode, evaluation.reward)
        if obs_metrics.enabled():
            result = (
                "cached"
                if job.cache_hit
                else ("trained" if evaluation.trained else "rejected")
            )
            self._m_episodes.labels(result=result).inc()
            self._m_best.set(self._best_reward)
        history.append(
            EpisodeRecord(
                episode=job.episode,
                descriptor=job.descriptor,
                decisions=[spec.describe() for spec in job.descriptor.blocks],
                reward=evaluation.reward,
                accuracy=evaluation.accuracy,
                unfairness=evaluation.unfairness,
                latency_ms=evaluation.latency_ms,
                storage_mb=evaluation.storage_mb,
                num_parameters=evaluation.num_parameters,
                trained=evaluation.trained,
                group_accuracy=evaluation.group_accuracy,
                elapsed_seconds=job.elapsed_seconds,
                cache_hit=job.cache_hit,
                worker=job.worker,
                fidelity=evaluation.fidelity,
                stages=list(job.stages),
            )
        )
        self._emit(
            EPISODE_FINISHED,
            episode=job.episode,
            payload={
                "reward": evaluation.reward,
                "accuracy": evaluation.accuracy,
                "unfairness": evaluation.unfairness,
                "trained": evaluation.trained,
                "cache_hit": job.cache_hit,
                "worker": job.worker,
                "fidelity": evaluation.fidelity,
                "stages": list(job.stages),
            },
        )

    # -- events / observability ---------------------------------------------------
    def _emit(
        self,
        kind: str,
        episode: Optional[int] = None,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.events.emit(EngineEvent(kind=kind, episode=episode, payload=payload or {}))

    def _emit_span(self, payload: Dict[str, Any], episode: Optional[int]) -> None:
        """Tracer sink: one completed span becomes one ``span`` event."""
        self._emit(SPAN, episode=episode, payload=payload)

    def _note_wave_metrics(
        self, wave_seconds: float, elapsed: float, start_episode: int
    ) -> None:
        """Record per-wave instruments and announce a metrics snapshot event.

        The ``metrics-updated`` event carries the handful of aggregates a
        tail wants on its progress line (throughput, cache hit rate), so a
        follower does not need to scrape ``/metrics`` -- or even share the
        process -- to show them.
        """
        if not obs_metrics.enabled():
            return
        self._m_waves.inc()
        self._m_wave_seconds.observe(wave_seconds)
        done = self._next_episode - start_episode
        eps = done / elapsed if elapsed > 0 else 0.0
        self._m_eps.set(eps)
        self._emit(
            METRICS_UPDATED,
            payload={
                "episodes_done": self._next_episode,
                "elapsed_seconds": elapsed,
                "episodes_per_second": eps,
                "cache_hit_rate": (
                    self.cache.hit_rate if self.cache is not None else None
                ),
                "evaluations_run": self.evaluations_run,
            },
        )
