"""Content-addressed evaluation cache.

The controller frequently re-samples architectures it has already proposed --
especially late in a search, when the policy has sharpened.  Re-training such
a child wastes the entire evaluation budget, so the engine memoizes
:class:`~repro.core.evaluator.EvaluationResult` objects under a canonical
fingerprint of the child's :class:`~repro.zoo.descriptors.ArchitectureDescriptor`
combined with an evaluation-context fingerprint (training and reward
configuration, device, dataset contents).  This generalises the paper's
"price before train" acceleration: pricing rejects children that would fail
the timing constraint, the cache rejects children that have already been
measured.

Three tiers, consulted in order:

1. an in-memory LRU,
2. optional on-disk persistence (one JSON file per entry under
   ``directory``), so long searches reuse evaluations across restarts --
   a corrupted or truncated entry file (torn write, disk-full) is skipped
   with a typed ``cache-entry-corrupt`` event, deleted and recomputed, never
   a crash,
3. an optional *shared* tier (:class:`SharedCacheTier`) over a
   :mod:`repro.store` artifact store, read-through/write-through, so
   concurrent engines on different hosts never train the same
   ``(context, child, fidelity)`` twice.  Tier payloads are the canonical
   JSON of the result, stored content-addressed and looked up through a
   fingerprint-named ref, so a fetched result is bit-for-bit the one some
   other engine computed.  A key that missed remotely is negatively cached
   and not asked for again until this process publishes it.
"""

from __future__ import annotations

import json
import os
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.core.evaluator import EvaluationResult
from repro.engine.events import CACHE_ENTRY_CORRUPT
from repro.engine.serde import result_from_dict, result_to_dict
from repro.obs import metrics as obs_metrics
from repro.utils.fingerprint import canonical_json
from repro.utils.serialization import load_json, save_json

# Receives (event kind, JSON payload); the engine wires it to its event bus.
CacheEventCallback = Callable[[str, Dict[str, Any]], None]

# Everything a malformed cache payload can raise while being decoded and
# rebuilt into an EvaluationResult.  OSError covers unreadable files.
_CORRUPT_ENTRY_ERRORS = (ValueError, KeyError, TypeError, OSError)


class SharedCacheTier:
    """Read-through/write-through memoization over an artifact store.

    ``store`` is any object speaking the store protocol (``get``/``put``/
    ``get_ref``/``set_ref``) -- in practice a
    :class:`~repro.store.tiered.TieredStore`, so unreachability degrades
    inside the store layer and never surfaces here.  A result is stored as
    its canonical JSON bytes under their content key, with a ref named by
    the cache fingerprint pointing at it; both halves are hash-verified on
    the way back, so a fetched result is bit-for-bit the published one.
    """

    def __init__(self, store: Any):
        self.store = store
        self.hits = 0
        self.misses = 0
        self.suppressed = 0
        self.publishes = 0
        # Fingerprints known absent remotely: a shared-tier miss is not
        # retried until we publish the key ourselves (negative-lookup
        # suppression -- each miss costs at most one remote round trip).
        self._negative: Set[str] = set()
        self._tracer = None
        self.bind_metrics(obs_metrics.get_registry())

    def bind_metrics(self, registry: "obs_metrics.MetricsRegistry") -> None:
        self._m_lookups = registry.counter(
            "repro_store_tier_lookups_total",
            "Shared-tier lookups by result",
            labelnames=("result",),
        )
        self._m_seconds = registry.histogram(
            "repro_store_tier_seconds",
            "Shared-tier operation latency",
            labelnames=("op",),
        )
        self._m_publishes = registry.counter(
            "repro_store_tier_publishes_total", "Results published to the tier"
        )
        bind = getattr(self.store, "bind_metrics", None)
        if bind is not None:
            bind(registry)

    def bind_tracer(self, tracer: Any) -> None:
        """Record fetch/publish round trips as spans on a ``store`` timeline."""
        self._tracer = tracer

    @property
    def degraded(self) -> bool:
        return bool(getattr(self.store, "degraded", False))

    def fetch(self, key: str) -> Optional[EvaluationResult]:
        """The tier's result for ``key``, or None (miss/suppressed/corrupt)."""
        if key in self._negative:
            self.suppressed += 1
            self._m_lookups.labels(result="suppressed").inc()
            return None
        wall_start = time.time()  # repro-lint: disable=DET001 -- telemetry span timestamp; never enters results or cache keys
        start = time.perf_counter()
        content_key = self.store.get_ref(key)
        data = None if content_key is None else self.store.get(content_key)
        elapsed = time.perf_counter() - start
        self._m_seconds.labels(op="fetch").observe(elapsed)
        self._record_span("store:fetch", wall_start, elapsed)
        result: Optional[EvaluationResult] = None
        if data is not None:
            try:
                result = result_from_dict(json.loads(data.decode("utf-8")))
            except _CORRUPT_ENTRY_ERRORS:
                result = None
        if result is None:
            self._negative.add(key)
            self.misses += 1
            self._m_lookups.labels(result="miss").inc()
            return None
        self.hits += 1
        self._m_lookups.labels(result="hit").inc()
        return result

    def publish(self, key: str, result: EvaluationResult) -> None:
        """Write ``result`` through to the tier under fingerprint ``key``."""
        payload = canonical_json(result_to_dict(result)).encode("utf-8")
        wall_start = time.time()  # repro-lint: disable=DET001 -- telemetry span timestamp; never enters results or cache keys
        start = time.perf_counter()
        content_key = self.store.put(payload)
        self.store.set_ref(key, content_key)
        elapsed = time.perf_counter() - start
        self._m_seconds.labels(op="publish").observe(elapsed)
        self._record_span("store:publish", wall_start, elapsed)
        self._negative.discard(key)
        self.publishes += 1
        self._m_publishes.inc()

    def _record_span(self, name: str, wall_start: float, duration: float) -> None:
        tracer = self._tracer
        if tracer is not None:
            tracer.record(name, start=wall_start, duration=duration, tid="store")


class EvaluationCache:
    """LRU cache mapping content fingerprints to evaluation results."""

    def __init__(
        self,
        capacity: int = 1024,
        directory: Optional[str] = None,
        tier: Optional[SharedCacheTier] = None,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.directory = directory
        self.tier = tier
        self.hits = 0
        self.misses = 0
        self.remote_hits = 0
        self._entries: "OrderedDict[str, EvaluationResult]" = OrderedDict()
        self._emit_event: Optional[CacheEventCallback] = None
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self.bind_metrics(obs_metrics.get_registry())

    def bind_metrics(self, registry: "obs_metrics.MetricsRegistry") -> None:
        """Point the cache's instrumentation at ``registry``.

        The engine rebinds a cache it owns to its per-run registry (which
        mirrors into the process-global one), so lookups show up in both the
        run's ``RunReport.metrics`` snapshot and the daemon's ``/metrics``.
        """
        self._m_lookups = registry.counter(
            "repro_cache_lookups_total",
            "Evaluation-cache lookups by result",
            labelnames=("result",),
        )
        self._m_lookup_seconds = registry.histogram(
            "repro_cache_lookup_seconds",
            "Evaluation-cache lookup latency (both outcomes)",
        )
        self._m_entries = registry.gauge(
            "repro_cache_entries", "In-memory evaluation-cache entries"
        )
        self._m_corrupt = registry.counter(
            "repro_cache_corrupt_entries_total",
            "On-disk cache entries dropped as unreadable",
        )
        if self.tier is not None:
            self.tier.bind_metrics(registry)

    def bind_events(self, callback: Optional[CacheEventCallback]) -> None:
        """Wire typed warning events (corrupt entries) to the engine's bus."""
        self._emit_event = callback

    def bind_tracer(self, tracer: Any) -> None:
        if self.tier is not None:
            self.tier.bind_tracer(tracer)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries or self._on_disk(key)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- lookup / insert ---------------------------------------------------------
    def get(self, key: str) -> Optional[EvaluationResult]:
        """Return the memoized result for ``key``, or None on a miss."""
        start = time.perf_counter()
        entry = self._lookup(key)
        self._m_lookup_seconds.observe(time.perf_counter() - start)
        self._m_lookups.labels(result="hit" if entry is not None else "miss").inc()
        return entry

    def _lookup(self, key: str) -> Optional[EvaluationResult]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry
        if self.directory is not None and self._on_disk(key):
            entry = self._load_disk_entry(key)
            if entry is not None:
                self._insert(key, entry)
                self.hits += 1
                return entry
        if self.tier is not None:
            entry = self.tier.fetch(key)
            if entry is not None:
                # A shared-tier hit becomes a local entry (memory + disk),
                # so repeats of this key never leave the process again.
                self._insert(key, entry)
                if self.directory is not None:
                    save_json(self._entry_path(key), result_to_dict(entry))
                self.hits += 1
                self.remote_hits += 1
                return entry
        self.misses += 1
        return None

    def _load_disk_entry(self, key: str) -> Optional[EvaluationResult]:
        """One on-disk entry, or None after dropping an unreadable file.

        Torn writes happen (a run killed mid-``save_json``, a full disk); a
        cache must treat them as misses, not crashes.  The broken file is
        deleted so the recomputed result can persist cleanly, and the drop
        is announced as a typed ``cache-entry-corrupt`` event.
        """
        path = self._entry_path(key)
        try:
            return result_from_dict(load_json(path))
        except _CORRUPT_ENTRY_ERRORS as error:
            self._m_corrupt.inc()
            try:
                os.remove(path)
            except OSError:
                pass
            if self._emit_event is not None:
                self._emit_event(
                    CACHE_ENTRY_CORRUPT,
                    {
                        "key": key,
                        "path": path,
                        "error": f"{type(error).__name__}: {error}",
                    },
                )
            return None

    def put(self, key: str, result: EvaluationResult) -> None:
        """Memoize ``result`` under ``key`` (and persist it when configured)."""
        self._insert(key, result)
        if self.directory is not None:
            save_json(self._entry_path(key), result_to_dict(result))
        if self.tier is not None:
            self.tier.publish(key, result)

    def _insert(self, key: str, result: EvaluationResult) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        self._m_entries.set(len(self._entries))

    # -- persistence --------------------------------------------------------------
    def _entry_path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"{key}.json")

    def _on_disk(self, key: str) -> bool:
        return self.directory is not None and os.path.exists(self._entry_path(key))

    # -- checkpointing ------------------------------------------------------------
    def snapshot(self) -> List[Tuple[str, Dict[str, Any]]]:
        """The in-memory entries in LRU order (oldest first), JSON-encodable."""
        return [(key, result_to_dict(result)) for key, result in self._entries.items()]

    def restore(self, entries: List[Tuple[str, Dict[str, Any]]]) -> None:
        """Replace the in-memory entries with a :meth:`snapshot` payload."""
        self._entries.clear()
        for key, payload in entries:
            self._insert(str(key), result_from_dict(payload))

    def clear(self) -> None:
        """Drop all in-memory entries and reset the statistics."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.remote_hits = 0
        self._m_entries.set(0)
