"""Content-addressed evaluation cache.

The controller frequently re-samples architectures it has already proposed --
especially late in a search, when the policy has sharpened.  Re-training such
a child wastes the entire evaluation budget, so the engine memoizes
:class:`~repro.core.evaluator.EvaluationResult` objects under a canonical
fingerprint of the child's :class:`~repro.zoo.descriptors.ArchitectureDescriptor`
combined with an evaluation-context fingerprint (training and reward
configuration, device, dataset contents).  This generalises the paper's
"price before train" acceleration: pricing rejects children that would fail
the timing constraint, the cache rejects children that have already been
measured.

The cache is an in-memory LRU with optional on-disk persistence (one JSON
file per entry under ``directory``), so long searches can reuse evaluations
across process restarts.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from repro.core.evaluator import EvaluationResult
from repro.engine.serde import result_from_dict, result_to_dict
from repro.obs import metrics as obs_metrics
from repro.utils.serialization import load_json, save_json


class EvaluationCache:
    """LRU cache mapping content fingerprints to evaluation results."""

    def __init__(self, capacity: int = 1024, directory: Optional[str] = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.directory = directory
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[str, EvaluationResult]" = OrderedDict()
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self.bind_metrics(obs_metrics.get_registry())

    def bind_metrics(self, registry: "obs_metrics.MetricsRegistry") -> None:
        """Point the cache's instrumentation at ``registry``.

        The engine rebinds a cache it owns to its per-run registry (which
        mirrors into the process-global one), so lookups show up in both the
        run's ``RunReport.metrics`` snapshot and the daemon's ``/metrics``.
        """
        self._m_lookups = registry.counter(
            "repro_cache_lookups_total",
            "Evaluation-cache lookups by result",
            labelnames=("result",),
        )
        self._m_lookup_seconds = registry.histogram(
            "repro_cache_lookup_seconds",
            "Evaluation-cache lookup latency (both outcomes)",
        )
        self._m_entries = registry.gauge(
            "repro_cache_entries", "In-memory evaluation-cache entries"
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries or self._on_disk(key)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # -- lookup / insert ---------------------------------------------------------
    def get(self, key: str) -> Optional[EvaluationResult]:
        """Return the memoized result for ``key``, or None on a miss."""
        start = time.perf_counter()
        entry = self._lookup(key)
        self._m_lookup_seconds.observe(time.perf_counter() - start)
        self._m_lookups.labels(result="hit" if entry is not None else "miss").inc()
        return entry

    def _lookup(self, key: str) -> Optional[EvaluationResult]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry
        if self.directory is not None and self._on_disk(key):
            entry = result_from_dict(load_json(self._entry_path(key)))
            self._insert(key, entry)
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def put(self, key: str, result: EvaluationResult) -> None:
        """Memoize ``result`` under ``key`` (and persist it when configured)."""
        self._insert(key, result)
        if self.directory is not None:
            save_json(self._entry_path(key), result_to_dict(result))

    def _insert(self, key: str, result: EvaluationResult) -> None:
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        self._m_entries.set(len(self._entries))

    # -- persistence --------------------------------------------------------------
    def _entry_path(self, key: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"{key}.json")

    def _on_disk(self, key: str) -> bool:
        return self.directory is not None and os.path.exists(self._entry_path(key))

    # -- checkpointing ------------------------------------------------------------
    def snapshot(self) -> List[Tuple[str, Dict[str, Any]]]:
        """The in-memory entries in LRU order (oldest first), JSON-encodable."""
        return [(key, result_to_dict(result)) for key, result in self._entries.items()]

    def restore(self, entries: List[Tuple[str, Dict[str, Any]]]) -> None:
        """Replace the in-memory entries with a :meth:`snapshot` payload."""
        self._entries.clear()
        for key, payload in entries:
            self._insert(str(key), result_from_dict(payload))

    def clear(self) -> None:
        """Drop all in-memory entries and reset the statistics."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self._m_entries.set(0)
