"""Search-engine subsystem: the execution layer of the NAS framework.

* :mod:`repro.engine.engine` -- :class:`SearchEngine`: batched parallel
  episode execution with deterministic, backend-independent results,
* :mod:`repro.engine.cache` -- content-addressed evaluation memoization,
* :mod:`repro.engine.workers` -- serial / thread / process worker pools,
* :mod:`repro.engine.checkpoint` -- checkpoint/resume of a running search,
* :mod:`repro.engine.events` -- event bus plus JSONL telemetry,
* :mod:`repro.engine.cli` -- the ``repro-search`` command-line entry point.
"""

from repro.engine.cache import EvaluationCache
from repro.engine.checkpoint import (
    EngineCheckpoint,
    has_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.engine.engine import (
    EngineConfig,
    SearchEngine,
    StopToken,
    get_default_engine_config,
    resolve_engine_config,
    set_default_engine_config,
)
from repro.engine.events import EngineEvent, EventBus, JsonlTelemetry
from repro.engine.workers import (
    BACKENDS,
    ProcessPool,
    SerialPool,
    ThreadPool,
    WorkerPool,
    create_pool,
)

__all__ = [
    "EvaluationCache",
    "EngineCheckpoint",
    "has_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "EngineConfig",
    "SearchEngine",
    "StopToken",
    "get_default_engine_config",
    "resolve_engine_config",
    "set_default_engine_config",
    "EngineEvent",
    "EventBus",
    "JsonlTelemetry",
    "BACKENDS",
    "ProcessPool",
    "SerialPool",
    "ThreadPool",
    "WorkerPool",
    "create_pool",
]
