"""Pluggable worker pools for parallel child evaluation.

Within one policy-gradient batch the child evaluations are independent: the
controller is only updated after the whole batch has been observed, so the
engine can evaluate a batch concurrently and feed the rewards back in
deterministic episode order.  All three backends implement the same
interface -- ``map_ordered`` runs one function over a list of payloads and
returns ``(value, worker_label)`` pairs *in submission order* -- so results
are reproducible regardless of which backend (or worker count) ran them.

Backends:

* ``serial``  -- runs in the calling thread; the reference implementation.
* ``thread``  -- a ``ThreadPoolExecutor``; numpy releases the GIL inside its
  kernels, so CPU-bound training overlaps across threads with zero pickling
  cost.
* ``process`` -- a ``ProcessPoolExecutor``; true multi-core parallelism at
  the cost of pickling the evaluator and child per task.  The mapped function
  and its payloads must be picklable (module-level functions only).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, List, Sequence, Tuple

WorkerResult = Tuple[Any, str]

BACKENDS = ("serial", "thread", "process")


class WorkerPool:
    """Interface shared by all execution backends."""

    name: str = "abstract"

    def map_ordered(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> List[WorkerResult]:
        """Run ``fn`` over ``payloads``; results in submission order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class SerialPool(WorkerPool):
    """Evaluates every payload in the calling thread (the seed loop's order)."""

    name = "serial"

    def map_ordered(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> List[WorkerResult]:
        return [(fn(payload), "serial-0") for payload in payloads]


class ThreadPool(WorkerPool):
    """Evaluates payloads on a shared ``ThreadPoolExecutor``."""

    name = "thread"

    def __init__(self, num_workers: int = 2):
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.num_workers = num_workers
        self._executor = ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="engine-worker"
        )

    def map_ordered(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> List[WorkerResult]:
        futures = [
            self._executor.submit(_thread_tagged, fn, payload) for payload in payloads
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._executor.shutdown(wait=True)


class ProcessPool(WorkerPool):
    """Evaluates payloads on a ``ProcessPoolExecutor`` (picklable tasks only)."""

    name = "process"

    def __init__(self, num_workers: int = 2):
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.num_workers = num_workers
        self._executor = ProcessPoolExecutor(max_workers=num_workers)

    def map_ordered(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> List[WorkerResult]:
        futures = [
            self._executor.submit(_process_tagged, fn, payload) for payload in payloads
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._executor.shutdown(wait=True)


def _thread_tagged(fn: Callable[[Any], Any], payload: Any) -> WorkerResult:
    return fn(payload), threading.current_thread().name


def _process_tagged(fn: Callable[[Any], Any], payload: Any) -> WorkerResult:
    return fn(payload), f"process-{os.getpid()}"


def create_pool(backend: str, num_workers: int = 2) -> WorkerPool:
    """Instantiate a worker pool by backend name."""
    if backend == "serial":
        return SerialPool()
    if backend == "thread":
        return ThreadPool(num_workers)
    if backend == "process":
        return ProcessPool(num_workers)
    raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
