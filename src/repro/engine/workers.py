"""Pluggable worker pools for parallel child evaluation.

Within one policy-gradient batch the child evaluations are independent: the
controller is only updated after the whole batch has been observed, so the
engine can evaluate a batch concurrently and feed the rewards back in
deterministic episode order.  All three backends implement the same
interface -- ``map_ordered`` runs one function over a list of payloads and
returns ``(value, worker_label)`` pairs *in submission order* -- so results
are reproducible regardless of which backend (or worker count) ran them.

Backends:

* ``serial``  -- runs in the calling thread; the reference implementation.
* ``thread``  -- a ``ThreadPoolExecutor``; numpy releases the GIL inside its
  kernels, so CPU-bound training overlaps across threads with zero pickling
  cost.
* ``process`` -- a ``ProcessPoolExecutor``; true multi-core parallelism.
  The mapped function and its payloads must be picklable (module-level
  functions only).  A ``shared`` object passed to :func:`create_pool` is
  shipped to each worker process exactly once (via the executor's
  initializer) instead of being re-pickled with every task; tasks read it
  back with :func:`process_shared`.
"""

from __future__ import annotations

import importlib
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs import metrics as obs_metrics

WorkerResult = Tuple[Any, str]

BACKENDS = ("serial", "thread", "process")

# Backends contributed by other packages (name -> factory).  Factories accept
# the full create_pool keyword set (num_workers/shared/blas_threads/metrics)
# plus ``events``, an EngineEvent callback the built-in pools have no use for.
_EXTRA_BACKENDS: Dict[str, Callable[..., "WorkerPool"]] = {}

# Backends that self-register on import: ``ensure_backend`` imports the named
# module when the backend is not yet registered, so a RunSpec can say
# ``backend: fleet`` without any caller importing repro.fleet first.
LAZY_BACKENDS = {"fleet": "repro.fleet"}

# Environment variables read by the common BLAS/OpenMP runtimes.
_BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)

# Set once per worker process by the pool initializer (never in the parent).
_PROCESS_SHARED: Any = None


def limit_blas_threads(num_threads: Optional[int]) -> None:
    """Pin the BLAS/OpenMP thread count of *this* process.

    Sets the conventional environment variables (effective for runtimes whose
    libraries have not been loaded yet -- e.g. ``spawn``-started workers) and
    additionally calls ``openblas_set_num_threads`` on any OpenBLAS shared
    library numpy already loaded, which is what makes the limit stick under
    the default ``fork`` start method where the parent's numpy (and its BLAS
    thread pool configuration) is inherited.  ``None`` is a no-op.
    """
    if num_threads is None:
        return
    if num_threads <= 0:
        raise ValueError("num_threads must be positive")
    for name in _BLAS_ENV_VARS:
        os.environ[name] = str(num_threads)
    try:  # pragma: no cover - depends on the numpy build
        import ctypes
        import glob

        import numpy

        lib_dirs = [
            os.path.join(os.path.dirname(numpy.__file__), "..", "numpy.libs"),
            os.path.join(os.path.dirname(numpy.__file__), ".libs"),
        ]
        candidates = [
            path
            for lib_dir in lib_dirs
            for path in glob.glob(os.path.join(lib_dir, "*openblas*"))
        ]
        for path in candidates:
            try:
                lib = ctypes.CDLL(path)
            except OSError:
                continue
            for symbol in ("openblas_set_num_threads64_", "openblas_set_num_threads"):
                setter = getattr(lib, symbol, None)
                if setter is not None:
                    setter(int(num_threads))
                    break
    except Exception:
        # Best effort: an exotic BLAS build falls back to the env vars alone.
        pass


def _init_process_worker(shared: Any, blas_threads: Optional[int] = None) -> None:
    """Executor initializer: unpickle the shared payload once per worker and
    pin the worker's BLAS thread count before the first task runs."""
    global _PROCESS_SHARED
    _PROCESS_SHARED = shared  # repro-lint: disable=THR001 -- per-process executor initializer; runs once before any task in that worker
    limit_blas_threads(blas_threads)


def process_shared() -> Any:
    """The per-process shared object installed by the pool initializer."""
    return _PROCESS_SHARED


class _PoolMetrics:
    """The per-backend worker-pool instruments (see :mod:`repro.obs`).

    ``queue_wait`` (time between submission and a worker picking the task
    up) is only measurable for in-process backends -- a process worker's
    start time lives in another process -- and ``task_seconds`` on the
    process backend therefore spans submit-to-completion (queue wait
    included).  ``busy_seconds`` accumulates worker-occupied time, so
    utilization is ``busy_seconds / (wall_time * num_workers)``.
    """

    def __init__(
        self, backend: str, registry: Optional["obs_metrics.MetricsRegistry"] = None
    ):
        registry = registry or obs_metrics.get_registry()
        label = {"backend": backend}
        self.tasks = registry.counter(
            "repro_pool_tasks_total", "Worker-pool tasks completed",
            labelnames=("backend",),
        ).labels(**label)
        self.task_seconds = registry.histogram(
            "repro_pool_task_seconds", "Worker-pool task duration",
            labelnames=("backend",),
        ).labels(**label)
        self.queue_wait = registry.histogram(
            "repro_pool_queue_wait_seconds",
            "Time a task waited for a worker (in-process backends)",
            labelnames=("backend",),
        ).labels(**label)
        self.in_flight = registry.gauge(
            "repro_pool_in_flight", "Tasks currently submitted or running",
            labelnames=("backend",),
        ).labels(**label)
        self.busy_seconds = registry.counter(
            "repro_pool_busy_seconds_total",
            "Cumulative worker-occupied seconds (utilization numerator)",
            labelnames=("backend",),
        ).labels(**label)


class WorkerPool:
    """Interface shared by all execution backends."""

    name: str = "abstract"
    # True when this pool delivered a shared object to its workers at startup
    # (so callers can strip it from per-task payloads).
    uses_shared: bool = False

    def map_ordered(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> List[WorkerResult]:
        """Run ``fn`` over ``payloads``; results in submission order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class SerialPool(WorkerPool):
    """Evaluates every payload in the calling thread (the seed loop's order)."""

    name = "serial"

    def __init__(self, metrics: Optional["obs_metrics.MetricsRegistry"] = None):
        self._metrics = _PoolMetrics(self.name, metrics)

    def map_ordered(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> List[WorkerResult]:
        meters = self._metrics
        results: List[WorkerResult] = []
        for payload in payloads:
            start = time.perf_counter()
            meters.in_flight.inc()
            try:
                value = fn(payload)
            finally:
                duration = time.perf_counter() - start
                meters.in_flight.dec()
                meters.queue_wait.observe(0.0)
                meters.task_seconds.observe(duration)
                meters.busy_seconds.inc(duration)
                meters.tasks.inc()
            results.append((value, "serial-0"))
        return results


class ThreadPool(WorkerPool):
    """Evaluates payloads on a shared ``ThreadPoolExecutor``."""

    name = "thread"

    def __init__(
        self,
        num_workers: int = 2,
        metrics: Optional["obs_metrics.MetricsRegistry"] = None,
    ):
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.num_workers = num_workers
        self._metrics = _PoolMetrics(self.name, metrics)
        self._executor = ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="engine-worker"
        )

    def map_ordered(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> List[WorkerResult]:
        submitted = time.perf_counter()
        futures = [
            self._executor.submit(self._run_tagged, fn, payload, submitted)
            for payload in payloads
        ]
        return [future.result() for future in futures]

    def _run_tagged(
        self, fn: Callable[[Any], Any], payload: Any, submitted: float
    ) -> WorkerResult:
        meters = self._metrics
        start = time.perf_counter()
        meters.queue_wait.observe(start - submitted)
        meters.in_flight.inc()
        try:
            value = fn(payload)
        finally:
            duration = time.perf_counter() - start
            meters.in_flight.dec()
            meters.task_seconds.observe(duration)
            meters.busy_seconds.inc(duration)
            meters.tasks.inc()
        return value, threading.current_thread().name

    def close(self) -> None:
        self._executor.shutdown(wait=True)


class ProcessPool(WorkerPool):
    """Evaluates payloads on a ``ProcessPoolExecutor`` (picklable tasks only).

    With ``shared`` given, the object is pickled into each worker process
    exactly once at startup; tasks retrieve it via :func:`process_shared`
    instead of carrying it in every payload.
    """

    name = "process"

    def __init__(
        self,
        num_workers: int = 2,
        shared: Any = None,
        blas_threads: Optional[int] = 1,
        metrics: Optional["obs_metrics.MetricsRegistry"] = None,
    ):
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if blas_threads is not None and blas_threads <= 0:
            raise ValueError("blas_threads must be positive when given")
        self.num_workers = num_workers
        self.blas_threads = blas_threads
        self.uses_shared = shared is not None
        self._metrics = _PoolMetrics(self.name, metrics)
        # The initializer always runs: even without a shared payload it pins
        # the worker's BLAS threads so N processes x M BLAS threads do not
        # oversubscribe the cores (bench_engine.py reports the effect).
        self._executor = ProcessPoolExecutor(
            max_workers=num_workers,
            initializer=_init_process_worker,
            initargs=(shared if self.uses_shared else None, blas_threads),
        )

    def map_ordered(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> List[WorkerResult]:
        meters = self._metrics
        submitted = time.perf_counter()
        futures = []
        for payload in payloads:
            future = self._executor.submit(_process_tagged, fn, payload)
            meters.in_flight.inc()
            future.add_done_callback(
                lambda _future, start=submitted: self._note_done(start)
            )
            futures.append(future)
        return [future.result() for future in futures]

    def _note_done(self, submitted: float) -> None:
        meters = self._metrics
        duration = time.perf_counter() - submitted
        meters.in_flight.dec()
        meters.task_seconds.observe(duration)
        meters.tasks.inc()

    def close(self) -> None:
        self._executor.shutdown(wait=True)


def _process_tagged(fn: Callable[[Any], Any], payload: Any) -> WorkerResult:
    return fn(payload), f"process-{os.getpid()}"


def register_backend(name: str, factory: Callable[..., WorkerPool]) -> None:
    """Register an externally provided pool backend (idempotent per name).

    ``factory`` is called with the :func:`create_pool` keyword set plus
    ``events`` (an :class:`~repro.engine.events.EngineEvent` callback, or
    None); it must return a :class:`WorkerPool`.  Re-registering a name
    replaces the factory, so test doubles can shadow the real one.
    """
    if name in BACKENDS:
        raise ValueError(f"backend {name!r} is built in and cannot be replaced")
    _EXTRA_BACKENDS[name] = factory  # repro-lint: disable=THR001 -- single dict store, atomic under the GIL; registration happens at import time (module body of the backend package), before any pool dispatches work


def ensure_backend(name: str) -> str:
    """Validate a backend name, importing lazy providers on first use.

    Returns the name unchanged so config validators can use it inline;
    raises ``ValueError`` (the config-error type) for unknown names.
    """
    if name in BACKENDS or name in _EXTRA_BACKENDS:
        return name
    module = LAZY_BACKENDS.get(name)
    if module is not None:
        importlib.import_module(module)  # registers itself on import
        if name in _EXTRA_BACKENDS:
            return name
    raise ValueError(
        f"unknown backend {name!r}; expected one of {available_backends()}"
    )


def available_backends() -> Tuple[str, ...]:
    """Every currently valid backend name (built-in, registered, lazy)."""
    names = dict.fromkeys(BACKENDS)
    names.update(dict.fromkeys(_EXTRA_BACKENDS))
    names.update(dict.fromkeys(LAZY_BACKENDS))
    return tuple(names)


def create_pool(
    backend: str,
    num_workers: int = 2,
    shared: Optional[Any] = None,
    blas_threads: Optional[int] = 1,
    metrics: Optional["obs_metrics.MetricsRegistry"] = None,
    events: Optional[Callable[..., None]] = None,
) -> WorkerPool:
    """Instantiate a worker pool by backend name.

    ``shared`` is delivered once per worker on the ``process`` backend (see
    :class:`ProcessPool`); the in-process backends ignore it -- their tasks
    already share the caller's objects by reference.  ``blas_threads`` pins
    each process worker's BLAS/OpenMP thread count (None leaves it alone);
    the in-process backends ignore it too, since limiting the parent's BLAS
    would also change the caller's own kernels.  ``metrics`` routes the
    pool's instruments into a specific registry (the engine passes its
    per-run registry); None uses the process-global one.  ``events`` is an
    EngineEvent callback forwarded only to registered backends (the fleet
    pool emits supervision events through it; built-ins have none to emit).
    """
    if backend == "serial":
        return SerialPool(metrics=metrics)
    if backend == "thread":
        return ThreadPool(num_workers, metrics=metrics)
    if backend == "process":
        return ProcessPool(
            num_workers, shared=shared, blas_threads=blas_threads, metrics=metrics
        )
    ensure_backend(backend)
    factory = _EXTRA_BACKENDS[backend]
    return factory(
        num_workers=num_workers,
        shared=shared,
        blas_threads=blas_threads,
        metrics=metrics,
        events=events,
    )
