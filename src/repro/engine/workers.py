"""Pluggable worker pools for parallel child evaluation.

Within one policy-gradient batch the child evaluations are independent: the
controller is only updated after the whole batch has been observed, so the
engine can evaluate a batch concurrently and feed the rewards back in
deterministic episode order.  All three backends implement the same
interface -- ``map_ordered`` runs one function over a list of payloads and
returns ``(value, worker_label)`` pairs *in submission order* -- so results
are reproducible regardless of which backend (or worker count) ran them.

Backends:

* ``serial``  -- runs in the calling thread; the reference implementation.
* ``thread``  -- a ``ThreadPoolExecutor``; numpy releases the GIL inside its
  kernels, so CPU-bound training overlaps across threads with zero pickling
  cost.
* ``process`` -- a ``ProcessPoolExecutor``; true multi-core parallelism.
  The mapped function and its payloads must be picklable (module-level
  functions only).  A ``shared`` object passed to :func:`create_pool` is
  shipped to each worker process exactly once (via the executor's
  initializer) instead of being re-pickled with every task; tasks read it
  back with :func:`process_shared`.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable, List, Optional, Sequence, Tuple

WorkerResult = Tuple[Any, str]

BACKENDS = ("serial", "thread", "process")

# Set once per worker process by the pool initializer (never in the parent).
_PROCESS_SHARED: Any = None


def _init_process_worker(shared: Any) -> None:
    """Executor initializer: unpickle the shared payload once per worker."""
    global _PROCESS_SHARED
    _PROCESS_SHARED = shared


def process_shared() -> Any:
    """The per-process shared object installed by the pool initializer."""
    return _PROCESS_SHARED


class WorkerPool:
    """Interface shared by all execution backends."""

    name: str = "abstract"
    # True when this pool delivered a shared object to its workers at startup
    # (so callers can strip it from per-task payloads).
    uses_shared: bool = False

    def map_ordered(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> List[WorkerResult]:
        """Run ``fn`` over ``payloads``; results in submission order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class SerialPool(WorkerPool):
    """Evaluates every payload in the calling thread (the seed loop's order)."""

    name = "serial"

    def map_ordered(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> List[WorkerResult]:
        return [(fn(payload), "serial-0") for payload in payloads]


class ThreadPool(WorkerPool):
    """Evaluates payloads on a shared ``ThreadPoolExecutor``."""

    name = "thread"

    def __init__(self, num_workers: int = 2):
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.num_workers = num_workers
        self._executor = ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="engine-worker"
        )

    def map_ordered(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> List[WorkerResult]:
        futures = [
            self._executor.submit(_thread_tagged, fn, payload) for payload in payloads
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._executor.shutdown(wait=True)


class ProcessPool(WorkerPool):
    """Evaluates payloads on a ``ProcessPoolExecutor`` (picklable tasks only).

    With ``shared`` given, the object is pickled into each worker process
    exactly once at startup; tasks retrieve it via :func:`process_shared`
    instead of carrying it in every payload.
    """

    name = "process"

    def __init__(self, num_workers: int = 2, shared: Any = None):
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.num_workers = num_workers
        self.uses_shared = shared is not None
        if self.uses_shared:
            self._executor = ProcessPoolExecutor(
                max_workers=num_workers,
                initializer=_init_process_worker,
                initargs=(shared,),
            )
        else:
            self._executor = ProcessPoolExecutor(max_workers=num_workers)

    def map_ordered(
        self, fn: Callable[[Any], Any], payloads: Sequence[Any]
    ) -> List[WorkerResult]:
        futures = [
            self._executor.submit(_process_tagged, fn, payload) for payload in payloads
        ]
        return [future.result() for future in futures]

    def close(self) -> None:
        self._executor.shutdown(wait=True)


def _thread_tagged(fn: Callable[[Any], Any], payload: Any) -> WorkerResult:
    return fn(payload), threading.current_thread().name


def _process_tagged(fn: Callable[[Any], Any], payload: Any) -> WorkerResult:
    return fn(payload), f"process-{os.getpid()}"


def create_pool(
    backend: str, num_workers: int = 2, shared: Optional[Any] = None
) -> WorkerPool:
    """Instantiate a worker pool by backend name.

    ``shared`` is delivered once per worker on the ``process`` backend (see
    :class:`ProcessPool`); the in-process backends ignore it -- their tasks
    already share the caller's objects by reference.
    """
    if backend == "serial":
        return SerialPool()
    if backend == "thread":
        return ThreadPool(num_workers)
    if backend == "process":
        return ProcessPool(num_workers, shared=shared)
    raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
