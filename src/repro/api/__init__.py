"""The declarative run API: serializable specs, a strategy registry and one
``repro.run()`` facade.

* :mod:`repro.api.spec`       -- the :class:`RunSpec` dataclass tree with a
  canonical JSON round-trip, schema validation and content fingerprinting,
* :mod:`repro.api.registry`   -- pluggable search strategies behind the
  :class:`SearchStrategy` protocol,
* :mod:`repro.api.strategies` -- the built-ins: ``fahana``, ``monas`` and
  the ``random`` no-learning baseline,
* :mod:`repro.api.run`        -- ``run(spec) -> RunReport``,
* :mod:`repro.api.cli`        -- the ``repro-search run spec.json`` command.

Everything here is re-exported at the package root: ``repro.run``,
``repro.RunSpec`` and friends are lazy aliases of these names.
"""

from repro.core.pipeline import FidelityConfig, PipelineSettings
from repro.api.spec import (
    ComputeSpec,
    DatasetSpec,
    DesignSpecConfig,
    RunSpec,
    SearchParams,
    SpecField,
    spec_schema,
)
from repro.api.registry import (
    SearchStrategy,
    StrategyInfo,
    available_strategies,
    get_strategy,
    register_strategy,
    strategy_descriptions,
    unregister_strategy,
)
from repro.api.run import RunReport, execute, run
from repro.api import strategies as _builtin_strategies  # noqa: F401  (registers built-ins)
from repro.api.strategies import RandomSearch, RegularizedEvolutionSearch

__all__ = [
    "ComputeSpec",
    "DatasetSpec",
    "DesignSpecConfig",
    "FidelityConfig",
    "PipelineSettings",
    "RunSpec",
    "SearchParams",
    "SpecField",
    "spec_schema",
    "SearchStrategy",
    "StrategyInfo",
    "available_strategies",
    "get_strategy",
    "register_strategy",
    "strategy_descriptions",
    "unregister_strategy",
    "RunReport",
    "run",
    "execute",
    "RandomSearch",
    "RegularizedEvolutionSearch",
]
