"""Spec-driven command line: ``repro-search run spec.json``.

Subcommands:

* ``run [spec.json] [overrides...]``  -- execute a run spec; every leaf of
  the spec schema is exposed as a generated override flag
  (``--search-episodes 20``, ``--engine-backend thread``, ``--strategy
  random``, boolean fields as ``--engine-use-cache/--no-engine-use-cache``),
* ``validate spec.json``              -- parse, validate and print the
  canonical spec plus its cache key without running anything,
* ``strategies``                      -- list the registered strategies,
* ``serve`` / ``submit`` / ``status`` / ``tail`` / ``cancel`` / ``list``
  -- the run-service lifecycle (see :mod:`repro.service.cli`): a daemon
  accepting RunSpec JSON, non-blocking submissions addressed by run id, and
  typed event-stream tailing that also works offline on any run directory.

The flags are generated from :func:`repro.api.spec.spec_schema`, so a new
spec field automatically becomes a CLI override.  The legacy flat-flag
interface (``repro-search --episodes 10 ...``) still works and is handled by
:mod:`repro.engine.cli`.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Dict, List, Optional

from repro.api.registry import strategy_descriptions
from repro.api.run import run as run_spec
from repro.api.spec import RunSpec, spec_schema
from repro.engine.checkpoint import has_checkpoint
from repro.engine.engine import resolve_engine_config
from repro.service.cli import SERVICE_COMMANDS, add_service_subparsers
from repro.service.errors import RunNotFound, RunNotReady, ServiceError


def add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    """Generate one override flag per spec-schema leaf (plus ``--strategy``)."""
    parser.add_argument(
        "--strategy",
        default=None,
        help="override the spec's strategy (see 'repro-search strategies')",
    )
    for leaf in spec_schema():
        if leaf.value_type is bool:
            parser.add_argument(
                leaf.flag,
                dest=f"override_{leaf.path}",
                action=argparse.BooleanOptionalAction,
                default=None,
                help=f"override {leaf.path} (default: {leaf.default})",
            )
        else:
            parser.add_argument(
                leaf.flag,
                dest=f"override_{leaf.path}",
                type=leaf.value_type,
                default=None,
                metavar=leaf.name.upper(),
                help=f"override {leaf.path} (default: {leaf.default!r})",
            )


def collect_overrides(args: argparse.Namespace) -> Dict[str, object]:
    """Dotted-path overrides from the parsed generated flags."""
    overrides: Dict[str, object] = {}
    if args.strategy is not None:
        overrides["strategy"] = args.strategy
    for leaf in spec_schema():
        value = getattr(args, f"override_{leaf.path}", None)
        if value is not None:
            overrides[leaf.path] = value
    return overrides


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-search",
        description="Declarative fairness- and hardware-aware NAS runs: "
        "one serializable RunSpec in, one unified report out.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="execute a run spec (with optional flag overrides)"
    )
    run_parser.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="path to a spec JSON file (omit to run the default spec)",
    )
    run_parser.add_argument(
        "--resume",
        action="store_true",
        help="continue from the checkpoint in the spec's engine.run_dir",
    )
    add_spec_arguments(run_parser)
    # Short aliases for the generated --engine-store-* flags: pointing a run
    # at a shared artifact store is common enough to deserve first-class
    # spelling (they share the override dests, so either spelling wins).
    run_parser.add_argument(
        "--store-root",
        dest="override_engine.store_root",
        default=None,
        metavar="DIR",
        help="alias for --engine-store-root (local artifact-store directory)",
    )
    run_parser.add_argument(
        "--store-url",
        dest="override_engine.store_url",
        default=None,
        metavar="URL",
        help="alias for --engine-store-url (shared store daemon, "
        "e.g. http://127.0.0.1:8765)",
    )

    validate_parser = subparsers.add_parser(
        "validate", help="parse and validate a spec, print its canonical form"
    )
    validate_parser.add_argument("spec", help="path to a spec JSON file")
    validate_parser.add_argument(
        "--print-key",
        action="store_true",
        help="print only the spec's cache key and the resolved engine "
        "configuration (machine-readable JSON, nothing is executed) -- "
        "groundwork for cross-run cache sharing",
    )

    subparsers.add_parser("strategies", help="list the registered strategies")
    add_service_subparsers(subparsers)
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    spec = RunSpec.from_file(args.spec) if args.spec else RunSpec().validate()
    overrides = collect_overrides(args)
    if overrides:
        spec = spec.with_overrides(values=overrides).validate()
    # What run() will execute on: an unset engine section resolves against
    # the process-wide default and ultimately plain serial.
    engine = resolve_engine_config(spec.engine)
    if args.resume and (
        engine.run_dir is None or not has_checkpoint(engine.run_dir)
    ):
        print(
            "error: --resume needs engine.run_dir to hold a checkpoint",
            file=sys.stderr,
        )
        return 2

    print(
        f"spec: strategy={spec.strategy}, {spec.search.episodes} episodes, "
        f"backend={engine.backend} (workers={engine.num_workers}), "
        f"cache={'on' if engine.use_cache or engine.cache_dir else 'off'}"
        + (f", run_dir={engine.run_dir}" if engine.run_dir else "")
    )
    report = run_spec(spec, resume=args.resume)
    if report.resumed_from is not None:
        print(f"resumed from episode {report.resumed_from}")
    print("\n== search summary ==")
    print(report.summary())
    if report.spec_path is not None:
        print(f"\nresolved spec archived at {report.spec_path}")
    if report.best is not None:
        print("\n== best searched architecture ==")
        print(report.best.descriptor.describe())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    spec = RunSpec.from_file(args.spec)
    if args.print_key:
        # The cache key fingerprints the computation (engine section
        # excluded), so two hosts can agree on shared cache entries without
        # running anything; the resolved engine config shows what *this*
        # process would execute with (spec section > process default > serial).
        engine = resolve_engine_config(spec.engine)
        payload = {
            "cache_key": spec.cache_key(),
            "engine": {
                f.name: getattr(engine, f.name)
                for f in dataclasses.fields(engine)
                if f.name != "cache"
            },
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(spec.to_json())
    print(f"\ncache key: {spec.cache_key()}", file=sys.stderr)
    return 0


def _cmd_strategies() -> int:
    for name, description in strategy_descriptions().items():
        print(f"{name:10s} {description}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "validate":
            return _cmd_validate(args)
        if args.command == "strategies":
            return _cmd_strategies()
        if args.command in SERVICE_COMMANDS:
            return SERVICE_COMMANDS[args.command](args)
    except (
        ValueError,
        FileNotFoundError,
        RunNotFound,
        RunNotReady,
        ServiceError,
    ) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; that is not an error.
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0
    return 2  # unreachable: argparse enforces a known command


if __name__ == "__main__":
    raise SystemExit(main())
