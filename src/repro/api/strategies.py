"""Built-in search strategies: ``fahana``, ``monas``, ``random`` and
``regularized_evolution``.

``fahana`` and ``monas`` wrap the paper's two searches with exactly the
configuration the legacy ``run_fahana_search`` / ``run_monas_search`` entry
points built, so a spec-driven run reproduces a legacy call bit for bit.
``random`` is a uniform random-search baseline that exists to prove the
registry's point: it plugs a new strategy into the same facade, engine,
cache and checkpointing without touching ``repro.core`` at all;
``regularized_evolution`` (aging evolution, Real et al. 2019) is the real
third baseline built the same way -- tournament parent selection plus
single-decision mutation over the sampled descriptors.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

import numpy as np

from repro.api.registry import register_strategy
from repro.api.spec import RunSpec
from repro.core.controller import ControllerSample, LSTMController
from repro.core.fahana import FaHaNaConfig, FaHaNaSearch
from repro.core.monas import MonasConfig, MonasSearch
from repro.core.policy import PolicyGradientConfig, PolicyGradientTrainer
from repro.core.producer import ProducerConfig
from repro.data.dataset import GroupedDataset
from repro.hardware.constraints import DesignSpec
from repro.nn.trainer import TrainingConfig
from repro.utils.rng import SeedLike, new_rng


def _child_precision(spec: RunSpec):
    """The (precision, inference_batch_size) pair for child training.

    A default-valued compute section maps back to ``(None, None)``: explicit
    float64 *is* the seed behaviour, and keeping the ``TrainingConfig``
    identical to a compute-less spec keeps the engine's evaluation-context
    fingerprint (and therefore every existing cache entry) unchanged.
    """
    compute = spec.compute
    if compute is None:
        return None, None
    precision = None if compute.precision == "float64" else compute.precision
    return precision, compute.inference_batch_size


def _fahana_config(spec: RunSpec) -> FaHaNaConfig:
    """The spec-driven equivalent of the legacy ``_fahana_config`` defaults."""
    params = spec.search
    precision, inference_batch = _child_precision(spec)
    kwargs = {}
    if spec.evaluation is not None:
        kwargs["pipeline"] = spec.evaluation
    return FaHaNaConfig(
        episodes=params.episodes,
        alpha=params.alpha,
        beta=params.beta,
        seed=params.seed,
        producer=ProducerConfig(
            backbone=params.backbone,
            freeze=True,
            gamma=params.gamma,
            pretrain_epochs=params.pretrain_epochs,
            width_multiplier=params.width_multiplier,
            max_searchable=params.max_searchable,
        ),
        policy=PolicyGradientConfig(batch_episodes=params.policy_batch),
        child_training=TrainingConfig(
            epochs=params.child_epochs,
            batch_size=params.child_batch_size,
            seed=params.seed,
            precision=precision,
            inference_batch_size=inference_batch,
        ),
        plateau_patience=params.plateau_patience,
        plateau_delta=params.plateau_delta,
        adaptive_wave=params.adaptive_wave,
        **kwargs,
    )


@register_strategy(
    "fahana",
    description="FaHaNa: freezing + latency bypass + policy-gradient controller "
    "(the paper's framework)",
)
def build_fahana(
    spec: RunSpec,
    train_dataset: GroupedDataset,
    validation_dataset: GroupedDataset,
    design_spec: DesignSpec,
) -> FaHaNaSearch:
    return FaHaNaSearch(
        train_dataset, validation_dataset, design_spec, _fahana_config(spec)
    )


@register_strategy(
    "monas",
    description="MONAS baseline: no freezing, no latency bypass (Table 2)",
)
def build_monas(
    spec: RunSpec,
    train_dataset: GroupedDataset,
    validation_dataset: GroupedDataset,
    design_spec: DesignSpec,
) -> MonasSearch:
    params = spec.search
    precision, inference_batch = _child_precision(spec)
    # Mirrors the legacy run_monas_search construction: gamma, pretraining and
    # the searchable cap do not apply (MONAS searches every position and
    # trains every child from scratch).
    kwargs = {}
    if spec.evaluation is not None:
        kwargs["pipeline"] = spec.evaluation
    config = MonasConfig(
        episodes=params.episodes,
        alpha=params.alpha,
        beta=params.beta,
        seed=params.seed,
        producer=ProducerConfig(
            backbone=params.backbone,
            freeze=False,
            pretrain_epochs=0,
            width_multiplier=params.width_multiplier,
        ),
        policy=PolicyGradientConfig(batch_episodes=params.policy_batch),
        child_training=TrainingConfig(
            epochs=params.child_epochs,
            batch_size=params.child_batch_size,
            seed=params.seed,
            precision=precision,
            inference_batch_size=inference_batch,
        ),
        plateau_patience=params.plateau_patience,
        plateau_delta=params.plateau_delta,
        adaptive_wave=params.adaptive_wave,
        **kwargs,
    )
    return MonasSearch(train_dataset, validation_dataset, design_spec, config)


# -- the random-search baseline -----------------------------------------------------
class _UniformController(LSTMController):
    """Controller that samples every decision uniformly from the search space.

    It keeps the LSTM parameters (so engine checkpoints round-trip through
    the same code path) but never consults them: ``sample`` draws uniform
    indices from the caller's RNG stream, consuming draws in the same
    per-decision order as the learned controller.
    """

    def sample(
        self,
        rng: SeedLike = None,
        temperature: float = 1.0,
        greedy: bool = False,
    ) -> ControllerSample:
        generator = new_rng(rng)
        decision_indices: List[List[int]] = []
        log_prob = 0.0
        entropy = 0.0
        for position in self.positions:
            sizes = self.search_space.decision_sizes(position.stride)
            per_position = [int(generator.integers(size)) for size in sizes]
            decision_indices.append(per_position)
            for size in sizes:
                log_prob += -float(np.log(size))
                entropy += float(np.log(size))
        decisions = [
            self.search_space.decode(position.stride, indices)
            for position, indices in zip(self.positions, decision_indices)
        ]
        # steps stays empty: there is no policy to backpropagate through.
        return ControllerSample(
            decision_indices=decision_indices,
            decisions=decisions,
            log_prob=log_prob,
            entropy=entropy,
            steps=[],
        )


class _NoUpdateTrainer(PolicyGradientTrainer):
    """Policy trainer that records rewards but never updates the policy."""

    def observe(self, sample: ControllerSample, reward: float) -> None:
        self.update_baseline(reward)  # keep the running-reward statistic

    def apply_update(self) -> None:
        pass


class RandomSearch(FaHaNaSearch):
    """Uniform random search over the (frozen-backbone) space.

    Shares the producer, evaluator, reward and engine integration with
    FaHaNa -- only the sampling distribution differs -- which makes it the
    canonical "how much does the controller actually learn?" baseline.
    """

    def __init__(
        self,
        train_dataset: GroupedDataset,
        validation_dataset: GroupedDataset,
        design_spec: Optional[DesignSpec] = None,
        config: Optional[FaHaNaConfig] = None,
    ):
        super().__init__(train_dataset, validation_dataset, design_spec, config)
        self.controller = _UniformController(
            search_space=self.config.search_space,
            positions=self.producer.positions,
            hidden_size=self.config.controller_hidden,
            rng=self.config.seed,
        )
        self.policy_trainer = _NoUpdateTrainer(self.controller, self.config.policy)


@register_strategy(
    "random",
    description="uniform random search over the frozen-backbone space "
    "(no-learning baseline)",
)
def build_random(
    spec: RunSpec,
    train_dataset: GroupedDataset,
    validation_dataset: GroupedDataset,
    design_spec: DesignSpec,
) -> RandomSearch:
    return RandomSearch(
        train_dataset, validation_dataset, design_spec, _fahana_config(spec)
    )


# -- the regularized-evolution baseline ---------------------------------------------
class _EvolutionPopulation:
    """The aging population shared by the evolution controller and trainer.

    The controller reads it to pick tournament parents; the trainer writes
    one ``(decision_indices, reward)`` member per observed episode and
    retires the oldest beyond ``capacity`` -- regularized ("aging")
    evolution, where survival requires being re-discovered, not merely
    having scored well once.
    """

    def __init__(self, capacity: int = 16, tournament_size: int = 4):
        if capacity <= 1:
            raise ValueError("population capacity must be at least 2")
        if tournament_size <= 0:
            raise ValueError("tournament_size must be positive")
        self.capacity = capacity
        self.tournament_size = tournament_size
        self.members: Deque[Tuple[List[List[int]], float]] = deque()

    @property
    def seeded(self) -> bool:
        """True once enough members exist to hold a meaningful tournament."""
        return len(self.members) >= self.tournament_size

    def record(self, decision_indices: List[List[int]], reward: float) -> None:
        self.members.append(([list(row) for row in decision_indices], reward))
        while len(self.members) > self.capacity:
            self.members.popleft()  # the oldest member ages out

    def tournament_parent(self, generator: np.random.Generator) -> List[List[int]]:
        """Best-of-``tournament_size`` uniformly drawn members' decisions."""
        draws = generator.integers(len(self.members), size=self.tournament_size)
        best_indices, best_reward = None, float("-inf")
        for draw in draws:
            indices, reward = self.members[int(draw)]
            if reward > best_reward:
                best_indices, best_reward = indices, reward
        return [list(row) for row in best_indices]


class _EvolutionController(LSTMController):
    """Samples children by mutating tournament winners of the population.

    Until the population holds a full tournament it samples uniformly (the
    classic random warm-up of regularized evolution).  The LSTM parameters
    are kept but never consulted, so engine checkpoints round-trip through
    the standard code path; on resume the population re-seeds from the
    episodes the resumed run observes (it is sampling state, not learned
    state, and is deliberately not part of the checkpoint schema).
    """

    population: _EvolutionPopulation  # attached by RegularizedEvolutionSearch

    def sample(
        self,
        rng: SeedLike = None,
        temperature: float = 1.0,
        greedy: bool = False,
    ) -> ControllerSample:
        generator = new_rng(rng)
        if not self.population.seeded:
            decision_indices = self._uniform_indices(generator)
        else:
            decision_indices = self._mutated_indices(generator)
        decisions = [
            self.search_space.decode(position.stride, indices)
            for position, indices in zip(self.positions, decision_indices)
        ]
        # No policy to backpropagate through: steps stays empty and the
        # log-prob/entropy bookkeeping is inert.
        return ControllerSample(
            decision_indices=decision_indices,
            decisions=decisions,
            log_prob=0.0,
            entropy=0.0,
            steps=[],
        )

    def _uniform_indices(self, generator: np.random.Generator) -> List[List[int]]:
        return [
            [
                int(generator.integers(size))
                for size in self.search_space.decision_sizes(position.stride)
            ]
            for position in self.positions
        ]

    def _mutated_indices(self, generator: np.random.Generator) -> List[List[int]]:
        """Tournament parent with exactly one decision slot re-drawn."""
        child = self.population.tournament_parent(generator)
        position_index = int(generator.integers(len(self.positions)))
        sizes = self.search_space.decision_sizes(
            self.positions[position_index].stride
        )
        slot = int(generator.integers(len(sizes)))
        size = sizes[slot]
        current = child[position_index][slot]
        if size > 1:
            # Uniform over the *other* values, so a mutation always mutates.
            offset = 1 + int(generator.integers(size - 1))
            child[position_index][slot] = (current + offset) % size
        return child


class _EvolutionTrainer(PolicyGradientTrainer):
    """Feeds observed rewards into the population; never updates the policy."""

    def __init__(self, controller, config, population: _EvolutionPopulation):
        super().__init__(controller, config)
        self._population = population

    def observe(self, sample: ControllerSample, reward: float) -> None:
        self.update_baseline(reward)  # keep the running-reward statistic
        self._population.record(sample.decision_indices, reward)

    def apply_update(self) -> None:
        pass


class RegularizedEvolutionSearch(FaHaNaSearch):
    """Aging evolution over the (frozen-backbone) space.

    Shares the producer, evaluator, reward, cache keys and engine
    integration with FaHaNa -- only the sampling distribution differs:
    children are single-decision mutations of tournament-selected parents,
    and the population forgets its oldest member every episode.
    """

    def __init__(
        self,
        train_dataset: GroupedDataset,
        validation_dataset: GroupedDataset,
        design_spec: Optional[DesignSpec] = None,
        config: Optional[FaHaNaConfig] = None,
        population_size: int = 16,
        tournament_size: int = 4,
    ):
        super().__init__(train_dataset, validation_dataset, design_spec, config)
        population = _EvolutionPopulation(
            capacity=population_size, tournament_size=tournament_size
        )
        self.controller = _EvolutionController(
            search_space=self.config.search_space,
            positions=self.producer.positions,
            hidden_size=self.config.controller_hidden,
            rng=self.config.seed,
        )
        self.controller.population = population
        self.policy_trainer = _EvolutionTrainer(
            self.controller, self.config.policy, population
        )


@register_strategy(
    "regularized_evolution",
    description="aging evolution: tournament parent selection + "
    "single-decision mutation (Real et al. 2019 baseline)",
)
def build_regularized_evolution(
    spec: RunSpec,
    train_dataset: GroupedDataset,
    validation_dataset: GroupedDataset,
    design_spec: DesignSpec,
) -> RegularizedEvolutionSearch:
    return RegularizedEvolutionSearch(
        train_dataset, validation_dataset, design_spec, _fahana_config(spec)
    )
