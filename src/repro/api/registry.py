"""Strategy registry: pluggable search strategies behind one protocol.

A *strategy* turns a :class:`~repro.api.spec.RunSpec` plus live datasets into
a search object the :class:`~repro.engine.engine.SearchEngine` can drive
(anything exposing the ``controller`` / ``producer`` / ``evaluator`` /
``policy_trainer`` protocol of :class:`~repro.core.fahana.FaHaNaSearch`).
The built-ins -- ``fahana``, ``monas`` and ``random`` -- register themselves
from :mod:`repro.api.strategies`; external code adds new baselines with
:func:`register_strategy` without touching ``repro.core``:

    from repro.api import register_strategy

    @register_strategy("my-baseline", description="...")
    def build(spec, train_dataset, validation_dataset, design_spec):
        return MySearch(train_dataset, validation_dataset, design_spec, ...)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Protocol

if TYPE_CHECKING:
    from repro.api.spec import RunSpec
    from repro.core.fahana import FaHaNaSearch
    from repro.data.dataset import GroupedDataset
    from repro.hardware.constraints import DesignSpec


class SearchStrategy(Protocol):
    """Factory protocol every registered strategy implements."""

    def __call__(
        self,
        spec: "RunSpec",
        train_dataset: "GroupedDataset",
        validation_dataset: "GroupedDataset",
        design_spec: "DesignSpec",
    ) -> "FaHaNaSearch":
        """Build an engine-drivable search object from a resolved spec."""
        ...


@dataclass(frozen=True)
class StrategyInfo:
    """A registered strategy: its name, factory and one-line description."""

    name: str
    factory: SearchStrategy
    description: str = ""


_STRATEGIES: Dict[str, StrategyInfo] = {}
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Import the built-in strategies on first registry access (idempotent)."""
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True  # repro-lint: disable=THR001 -- GIL-atomic flag flip; worst case two threads both import (idempotent)
        import repro.api.strategies  # noqa: F401  (registers fahana/monas/random)


def register_strategy(
    name: str,
    factory: Optional[SearchStrategy] = None,
    *,
    description: str = "",
    overwrite: bool = False,
) -> Callable:
    """Register a strategy factory; usable directly or as a decorator.

    Raises on duplicate names unless ``overwrite=True`` so accidental
    shadowing of a built-in is loud.
    """
    if not name or not isinstance(name, str):
        raise ValueError("strategy name must be a non-empty string")

    def _register(fn: SearchStrategy) -> SearchStrategy:
        if not overwrite and name in _STRATEGIES:
            raise ValueError(
                f"strategy {name!r} is already registered; pass overwrite=True "
                "to replace it"
            )
        _STRATEGIES[name] = StrategyInfo(  # repro-lint: disable=THR001 -- registration happens at import time / test setup on the driving thread, never from workers
            name=name, factory=fn, description=description
        )
        return fn

    if factory is not None:
        return _register(factory)
    return _register


def unregister_strategy(name: str) -> None:
    """Remove a registered strategy (mainly for tests)."""
    _STRATEGIES.pop(name, None)  # repro-lint: disable=THR001 -- test-teardown helper, driving thread only


def get_strategy(name: str) -> StrategyInfo:
    """Look up a strategy, with the registered names listed on failure."""
    _ensure_builtins()
    if name not in _STRATEGIES:
        raise ValueError(
            f"unknown strategy {name!r}; registered strategies: "
            f"{', '.join(available_strategies())}"
        )
    return _STRATEGIES[name]


def available_strategies() -> List[str]:
    """Sorted names of every registered strategy."""
    _ensure_builtins()
    return sorted(_STRATEGIES)


def strategy_descriptions() -> Dict[str, str]:
    """Mapping of strategy name to its one-line description."""
    _ensure_builtins()
    return {name: info.description for name, info in sorted(_STRATEGIES.items())}
