"""The declarative run specification: one serializable description of a run.

A :class:`RunSpec` captures everything needed to reproduce a search --
strategy name, dataset recipe, design constraints, search hyper-parameters
and engine execution knobs -- as a tree of plain dataclasses with a canonical
JSON round-trip.  A service, a CLI invocation, a checkpoint directory and a
remote worker can all share the same spec file; :func:`RunSpec.cache_key`
fingerprints the computation (everything except the engine section, which by
design does not change results) so a spec doubles as a cache key.

Sections:

* ``strategy``  -- name of a registered search strategy (``fahana``,
  ``monas``, ``random``, or anything registered via
  :func:`repro.api.registry.register_strategy`),
* ``dataset``   -- :class:`DatasetSpec`: the synthetic dermatology recipe
  plus the split seed (mirrors :func:`repro.core.api.prepare_dataset`),
* ``design``    -- :class:`DesignSpecConfig`: device + timing/accuracy
  constraints, resolved to a :class:`~repro.hardware.constraints.DesignSpec`,
* ``search``    -- :class:`SearchParams`: the strategy hyper-parameters
  (same knobs and defaults as the legacy ``run_fahana_search``), plus the
  engine-level schedule knobs (reward-plateau early stopping, adaptive wave
  sizing),
* ``evaluation`` -- :class:`~repro.core.pipeline.PipelineSettings`, reused
  directly: optional parameter/storage gates and the multi-fidelity ladder
  (proxy stages with successive-halving promotion).  Unset (None) means the
  single full-fidelity stage that reproduces the seed evaluator bit for bit,
* ``compute``   -- :class:`ComputeSpec`: numeric precision of the child
  training hot path (``float32`` for ~2x throughput, ``float64`` -- the
  default -- for bit-for-bit seed parity) and the inference batch size,
* ``engine``    -- :class:`~repro.engine.engine.EngineConfig`, reused
  directly (the ``cache`` field, a live object, is not serializable; use
  ``cache_dir`` in specs).

``evaluation``, ``compute`` and ``engine`` are the optional sections: absent
sections stay None so "not specified" round-trips as unset.  Unlike the
engine section, the evaluation section *changes what a run computes*, so it
is part of :meth:`RunSpec.cache_key` whenever present; the compute section
participates only when non-default (float64 rewards match the default stack
to the last bit, and re-keying every existing spec for a spelled-out default
would orphan every existing cache entry).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, List, Optional, Tuple, Type, get_args, get_origin, get_type_hints

from repro.core.pipeline import FidelityConfig, PipelineSettings
from repro.data.dataset import DatasetSplits, stratified_split
from repro.data.dermatology import DermatologyConfig, DermatologyGenerator
from repro.engine.engine import EngineConfig
from repro.nn.dtype import DTYPE_NAMES
from repro.hardware.constraints import DesignSpec, HardwareSpec, SoftwareSpec
from repro.hardware.device import get_device, list_devices
from repro.utils.fingerprint import content_fingerprint
from repro.utils.serialization import load_json, save_json

SPEC_VERSION = 1

# EngineConfig fields that hold live objects and therefore never cross the
# serialization boundary (configure cache_dir for a shareable on-disk cache).
_ENGINE_EXCLUDED_FIELDS = ("cache",)


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for the synthetic dermatology dataset and its 60/20/20 split.

    Defaults mirror :class:`~repro.data.dermatology.DermatologyConfig` plus
    ``split_seed=0``, so a default ``DatasetSpec`` reproduces
    ``prepare_dataset()`` exactly.
    """

    image_size: int = 32
    num_classes: int = 5
    samples_per_class: int = 60
    minority_fraction: float = 0.2
    dark_contrast: float = 0.55
    seed: int = 2022
    split_seed: int = 0

    def __post_init__(self) -> None:
        self.dermatology_config()  # validates the generator parameters early

    def dermatology_config(self) -> DermatologyConfig:
        """The generator configuration this spec describes."""
        return DermatologyConfig(
            image_size=self.image_size,
            num_classes=self.num_classes,
            samples_per_class_majority=self.samples_per_class,
            minority_fraction=self.minority_fraction,
            dark_contrast=self.dark_contrast,
            seed=self.seed,
        )

    def build(self) -> DatasetSplits:
        """Generate the dataset and split it 60/20/20."""
        dataset = DermatologyGenerator(self.dermatology_config()).generate()
        return stratified_split(dataset, rng=self.split_seed)


@dataclass(frozen=True)
class DesignSpecConfig:
    """Serializable form of the hardware/software design specification.

    ``device`` is a built-in profile name (see
    :func:`repro.hardware.device.list_devices`).  Defaults match
    :func:`repro.core.api.default_design_spec`.
    """

    device: str = "raspberry-pi-4"
    timing_constraint_ms: float = 1500.0
    accuracy_constraint: float = 0.0
    max_storage_mb: Optional[float] = None

    def __post_init__(self) -> None:
        try:
            get_device(self.device)
        except KeyError as error:
            raise ValueError(str(error.args[0] if error.args else error)) from None
        self.build()  # HardwareSpec/SoftwareSpec validate the constraints

    def build(self) -> DesignSpec:
        """Resolve the named device and materialise the design spec."""
        return DesignSpec(
            hardware=HardwareSpec(
                device=get_device(self.device),
                timing_constraint_ms=self.timing_constraint_ms,
                max_storage_mb=self.max_storage_mb,
            ),
            software=SoftwareSpec(accuracy_constraint=self.accuracy_constraint),
        )


@dataclass(frozen=True)
class SearchParams:
    """Strategy hyper-parameters (knobs and defaults of the legacy API).

    ``child_batch_size`` is the child-training batch size; 32 matches the
    :class:`~repro.nn.trainer.TrainingConfig` default the legacy entry points
    used.  Strategies are free to ignore knobs that do not apply to them
    (MONAS ignores ``gamma``/``pretrain_epochs``/``max_searchable``, random
    search ignores ``policy_batch`` for learning but keeps it as wave size).
    """

    episodes: int = 20
    backbone: str = "MobileNetV2"
    gamma: float = 0.5
    width_multiplier: float = 0.35
    child_epochs: int = 5
    child_batch_size: int = 32
    pretrain_epochs: int = 5
    max_searchable: Optional[int] = None
    alpha: float = 1.0
    beta: float = 1.0
    seed: int = 0
    policy_batch: int = 1
    # Engine-level schedule knobs.  They change which episodes run (and, with
    # a staged evaluation section, which children get promoted), so they live
    # in the search section and are part of the spec's cache key.
    plateau_patience: Optional[int] = None
    plateau_delta: float = 0.0
    adaptive_wave: bool = False

    def __post_init__(self) -> None:
        if self.episodes <= 0:
            raise ValueError("episodes must be positive")
        if self.child_epochs < 0 or self.pretrain_epochs < 0:
            raise ValueError("child_epochs and pretrain_epochs must be non-negative")
        if self.child_batch_size <= 0:
            raise ValueError("child_batch_size must be positive")
        if self.policy_batch <= 0:
            raise ValueError("policy_batch must be positive")
        if self.max_searchable is not None and self.max_searchable <= 0:
            raise ValueError("max_searchable must be positive when given")
        if self.plateau_patience is not None and self.plateau_patience <= 0:
            raise ValueError("plateau_patience must be positive when given")
        if self.plateau_delta < 0:
            raise ValueError("plateau_delta must be non-negative")


@dataclass(frozen=True)
class ComputeSpec:
    """Numeric-precision policy of the run's child-training hot path.

    ``precision="float32"`` roughly doubles pure-numpy training throughput
    (see ``benchmarks/bench_nn.py``); ``"float64"`` -- the default -- keeps
    the seed's bit-for-bit arithmetic.  Only the child evaluation changes
    precision: controller sampling and the policy gradient stay float64, so
    the sequence of sampled architectures is precision-independent and only
    rewards drift (within tolerance -- see the parity tests).

    The section is optional and participates in :meth:`RunSpec.cache_key`
    only when it differs from the defaults, so every existing spec (and every
    existing cache entry) keeps its historical fingerprint.
    """

    precision: str = "float64"
    # Prediction batch size during child evaluation; None keeps the
    # historical defaults (64 for fairness scoring, the training batch size
    # for direct Trainer.predict calls).  Inference keeps no backward
    # caches, so larger batches cut per-batch Python overhead without extra
    # peak memory.
    inference_batch_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.precision not in DTYPE_NAMES:
            raise ValueError(
                f"precision must be one of {DTYPE_NAMES}, got {self.precision!r}"
            )
        if self.inference_batch_size is not None and self.inference_batch_size <= 0:
            raise ValueError("inference_batch_size must be positive when given")

    @property
    def is_default(self) -> bool:
        """True when this section spells out the implicit defaults."""
        return self == ComputeSpec()


_SECTIONS: Tuple[Tuple[str, type], ...] = ()  # filled in after RunSpec below


@dataclass(frozen=True)
class RunSpec:
    """One declarative, serializable description of a search run.

    ``engine`` is Optional so "not specified" stays distinguishable from "an
    explicit engine section that happens to spell out the defaults": None
    resolves against the process-wide default engine config (and ultimately
    plain serial), while a present section -- even an all-default one -- is
    honoured verbatim.  ``evaluation`` is Optional for the analogous reason:
    None is the seed evaluator's single full-fidelity pipeline, and a spec
    that never mentions the section keeps its historical cache key.
    """

    strategy: str = "fahana"
    dataset: DatasetSpec = field(default_factory=DatasetSpec)
    design: DesignSpecConfig = field(default_factory=DesignSpecConfig)
    search: SearchParams = field(default_factory=SearchParams)
    evaluation: Optional[PipelineSettings] = None
    compute: Optional[ComputeSpec] = None
    engine: Optional[EngineConfig] = None

    # -- validation ---------------------------------------------------------------
    def validate(self) -> "RunSpec":
        """Check the spec against the strategy registry; returns self."""
        from repro.api.registry import get_strategy

        get_strategy(self.strategy)  # raises with the registered names listed
        return self

    # -- canonical dict / JSON round-trip ------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Flatten into plain JSON-encodable data (the canonical schema).

        An unset engine section (None) is omitted, so it round-trips as
        "unset" rather than silently becoming an explicit default section.
        """
        payload = {
            "version": SPEC_VERSION,
            "strategy": self.strategy,
            "dataset": _section_to_dict(self.dataset),
            "design": _section_to_dict(self.design),
            "search": _section_to_dict(self.search),
        }
        if self.evaluation is not None:
            payload["evaluation"] = _section_to_dict(self.evaluation)
        if self.compute is not None:
            payload["compute"] = _section_to_dict(self.compute)
        if self.engine is not None:
            if self.engine.cache is not None:
                raise ValueError(
                    "engine.cache holds a live EvaluationCache object and "
                    "cannot be serialized; configure engine.cache_dir (an "
                    "on-disk cache) in specs instead"
                )
            payload["engine"] = _section_to_dict(
                self.engine, exclude=_ENGINE_EXCLUDED_FIELDS
            )
        return payload

    @classmethod
    def from_dict(cls, payload: Any) -> "RunSpec":
        """Rebuild a spec, rejecting unknown keys/strategies with clear errors."""
        if not isinstance(payload, dict):
            raise ValueError(
                f"a run spec must be a JSON object, got {type(payload).__name__}"
            )
        allowed = ["version", "strategy"] + [name for name, _ in _SECTIONS]
        _reject_unknown(payload, allowed, "run spec")
        version = payload.get("version", SPEC_VERSION)
        if int(version) != SPEC_VERSION:
            raise ValueError(
                f"unsupported spec version {version!r} (this build reads "
                f"version {SPEC_VERSION})"
            )
        strategy = payload.get("strategy", "fahana")
        if not isinstance(strategy, str) or not strategy:
            raise ValueError("'strategy' must be a non-empty string")
        kwargs: Dict[str, Any] = {"strategy": strategy}
        for name, section_cls in _SECTIONS:
            if name in _OPTIONAL_SECTIONS and name not in payload:
                continue  # absent optional sections stay None ("unset")
            section_payload = payload.get(name, {})
            exclude = _ENGINE_EXCLUDED_FIELDS if section_cls is EngineConfig else ()
            kwargs[name] = _section_from_dict(
                section_cls, section_payload, name, exclude=exclude
            )
        spec = cls(**kwargs)
        return spec.validate()

    def to_json(self) -> str:
        """Pretty, deterministic JSON text of this spec."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        return cls.from_dict(json.loads(text))

    def to_file(self, path: str) -> str:
        """Write the spec as JSON; returns the path."""
        save_json(path, self.to_dict())
        return path

    @classmethod
    def from_file(cls, path: str) -> "RunSpec":
        """Load a spec from a JSON file written by :meth:`to_file` (or by hand)."""
        try:
            payload = load_json(path)
        except json.JSONDecodeError as error:
            raise ValueError(f"spec file {path!r} is not valid JSON: {error}") from None
        try:
            return cls.from_dict(payload)
        except ValueError as error:
            raise ValueError(f"invalid spec file {path!r}: {error}") from None

    # -- fingerprinting -------------------------------------------------------------
    def cache_key(self) -> str:
        """Content fingerprint of the *computation* this spec describes.

        The engine section is excluded: backend, worker count, caching and
        checkpointing change how a run executes, never what it computes, so
        two specs that differ only in execution knobs share a fingerprint.
        A compute section that merely spells out the defaults (float64) is
        likewise dropped, so adding the section introduced no key churn:
        only a genuinely non-default precision re-keys a spec.
        """
        payload = self.to_dict()
        payload.pop("engine", None)
        if self.compute is not None and self.compute.is_default:
            payload.pop("compute", None)
        return content_fingerprint(payload)

    # -- ergonomics -----------------------------------------------------------------
    def with_overrides(self, **overrides: Any) -> "RunSpec":
        """A copy with dotted-path overrides, e.g. ``{"search.episodes": 5}``.

        Accepts ``strategy=...`` and ``section__field=...`` keyword form as
        well as a ``values={dotted.path: value}`` mapping.
        """
        values: Dict[str, Any] = dict(overrides.pop("values", {}) or {})
        for key, value in overrides.items():
            values[key.replace("__", ".")] = value
        spec = self
        sections = dict(_SECTIONS)
        for path, value in values.items():
            if path == "strategy":
                spec = replace(spec, strategy=str(value))
                continue
            section, _, name = path.partition(".")
            if section not in sections or not name:
                raise ValueError(
                    f"unknown override path {path!r}; expected 'strategy' or "
                    f"'<section>.<field>' with section one of "
                    f"{sorted(sections)}"
                )
            current = getattr(spec, section)
            if current is None:  # overriding an unset engine section starts from defaults
                current = sections[section]()
            if name not in {f.name for f in fields(current)}:
                raise ValueError(
                    f"unknown field {name!r} in {section!r} section; allowed: "
                    f"{sorted(f.name for f in fields(current))}"
                )
            spec = replace(spec, **{section: replace(current, **{name: value})})
        return spec


_SECTIONS = (
    ("dataset", DatasetSpec),
    ("design", DesignSpecConfig),
    ("search", SearchParams),
    ("evaluation", PipelineSettings),
    ("compute", ComputeSpec),
    ("engine", EngineConfig),
)

# Sections whose absence means "unset" (None) rather than "all defaults".
_OPTIONAL_SECTIONS = ("evaluation", "compute", "engine")

# Non-scalar spec fields: serialized as a JSON list of objects, parsed with
# the element class below, and excluded from the generated CLI flags.
_NESTED_LIST_FIELDS: Dict[Tuple[type, str], type] = {
    (PipelineSettings, "fidelities"): FidelityConfig,
}


# -- schema introspection (drives the CLI flag generation) --------------------------
@dataclass(frozen=True)
class SpecField:
    """One leaf of the spec tree, as exposed to schema consumers (the CLI)."""

    section: str
    name: str
    path: str  # dotted, e.g. "search.episodes"
    flag: str  # CLI flag, e.g. "--search-episodes"
    value_type: type  # int / float / str / bool
    optional: bool  # True when None is an accepted value
    default: Any


def spec_schema() -> List[SpecField]:
    """Flat schema of every serializable spec field (excluding ``strategy``)."""
    schema: List[SpecField] = []
    for section, section_cls in _SECTIONS:
        hints = get_type_hints(section_cls)
        defaults = section_cls()
        for spec_field in fields(section_cls):
            if section_cls is EngineConfig and spec_field.name in _ENGINE_EXCLUDED_FIELDS:
                continue
            if (section_cls, spec_field.name) in _NESTED_LIST_FIELDS:
                continue  # lists of objects have no single-flag CLI form
            value_type, optional = _unwrap_hint(hints[spec_field.name])
            schema.append(
                SpecField(
                    section=section,
                    name=spec_field.name,
                    path=f"{section}.{spec_field.name}",
                    flag=f"--{section}-{spec_field.name}".replace("_", "-"),
                    value_type=value_type,
                    optional=optional,
                    default=getattr(defaults, spec_field.name),
                )
            )
    return schema


# -- helpers ------------------------------------------------------------------------
def _section_to_dict(section: Any, exclude: Tuple[str, ...] = ()) -> Dict[str, Any]:
    payload: Dict[str, Any] = {}
    for f in fields(section):
        if f.name in exclude:
            continue
        value = getattr(section, f.name)
        if (type(section), f.name) in _NESTED_LIST_FIELDS:
            value = [_section_to_dict(entry) for entry in value]
        payload[f.name] = value
    return payload


def _reject_unknown(payload: Dict[str, Any], allowed: List[str], where: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown key(s) {', '.join(repr(k) for k in unknown)} in {where}; "
            f"allowed keys: {', '.join(sorted(allowed))}"
        )


def _section_from_dict(
    section_cls: Type[Any],
    payload: Any,
    section: str,
    exclude: Tuple[str, ...] = (),
) -> Any:
    if not isinstance(payload, dict):
        raise ValueError(
            f"the {section!r} section must be a JSON object, "
            f"got {type(payload).__name__}"
        )
    hints = get_type_hints(section_cls)
    allowed = [f.name for f in fields(section_cls) if f.name not in exclude]
    _reject_unknown(payload, allowed, f"the {section!r} section")
    kwargs = {}
    for name in allowed:
        if name not in payload:
            continue
        element_cls = _NESTED_LIST_FIELDS.get((section_cls, name))
        if element_cls is not None:
            kwargs[name] = _nested_list_from(
                payload[name], element_cls, f"{section}.{name}"
            )
        else:
            kwargs[name] = _coerce(payload[name], hints[name], f"{section}.{name}")
    try:
        return section_cls(**kwargs)
    except ValueError as error:
        raise ValueError(f"invalid {section!r} section: {error}") from None


def _nested_list_from(payload: Any, element_cls: Type[Any], path: str) -> Tuple[Any, ...]:
    """Parse a JSON list of objects into a tuple of ``element_cls`` instances."""
    if not isinstance(payload, list):
        raise ValueError(
            f"{path} must be a JSON array of objects, got {type(payload).__name__}"
        )
    return tuple(
        _section_from_dict(element_cls, entry, f"{path}[{index}]")
        for index, entry in enumerate(payload)
    )


def _unwrap_hint(hint: Any) -> Tuple[type, bool]:
    """Reduce a type hint to ``(base_type, accepts_none)``."""
    if get_origin(hint) is not None:  # Optional[X] / Union[X, None]
        args = [a for a in get_args(hint) if a is not type(None)]
        if len(args) == 1:
            base, _ = _unwrap_hint(args[0])
            return base, True
        return str, True  # permissive fallback for exotic unions
    if hint in (int, float, str, bool):
        return hint, False
    return str, False


def _coerce(value: Any, hint: Any, path: str) -> Any:
    """Coerce a JSON value to the field's declared type, with a located error."""
    base, optional = _unwrap_hint(hint)
    if value is None:
        if optional:
            return None
        raise ValueError(f"{path} must not be null")
    try:
        if base is bool:
            if not isinstance(value, bool):
                raise TypeError(f"expected true/false, got {value!r}")
            return value
        if base is int:
            if isinstance(value, bool) or (
                isinstance(value, float) and not value.is_integer()
            ):
                raise TypeError(f"expected an integer, got {value!r}")
            return int(value)
        if base is float:
            if isinstance(value, bool):
                raise TypeError(f"expected a number, got {value!r}")
            return float(value)
        if base is str:
            if not isinstance(value, str):
                raise TypeError(f"expected a string, got {value!r}")
            return value
    except (TypeError, ValueError) as error:
        raise ValueError(f"{path}: {error}") from None
    return value
