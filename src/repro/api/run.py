"""The ``repro.run`` facade: one entry point from spec to report.

``run(spec)`` resolves the spec (path, dict or :class:`RunSpec`), builds the
dataset, looks the strategy up in the registry, drives the search on a
:class:`~repro.engine.engine.SearchEngine` and returns a :class:`RunReport`
bundling the search result, the engine's execution statistics, the artifact
paths and the resolved spec.  With a run directory configured, the resolved
spec is archived next to the checkpoint (``run_spec.json``) so a run can be
re-launched -- locally or on a remote worker -- from its own artifacts.

Since the run-service redesign, ``run()`` is thin sugar over the lifecycle
API: it submits the spec to a :class:`~repro.service.client.RunClient`
backed by an ephemeral in-process
:class:`~repro.service.local.LocalExecutor` and blocks on
``handle.result()``.  The synchronous entry point and a service-managed run
therefore execute the exact same code -- :func:`execute` -- and produce
bit-for-bit identical reports.  :func:`execute` itself stays importable for
callers that need the extra lifecycle hooks (a cooperative
:class:`~repro.engine.engine.StopToken`, a live event callback) without a
client in between.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Optional, Union

from repro.api.registry import get_strategy
from repro.api.spec import RunSpec
from repro.core.fahana import FaHaNaResult
from repro.data.dataset import GroupedDataset
from repro.engine.checkpoint import CHECKPOINT_JSON
from repro.engine.engine import (
    EngineConfig,
    SearchEngine,
    StopToken,
    resolve_engine_config,
)
from repro.engine.events import EngineEvent
from repro.engine.serde import history_to_dict
from repro.hardware.constraints import DesignSpec

RUN_SPEC_JSON = "run_spec.json"

SpecLike = Union[RunSpec, str, Dict[str, Any]]


@dataclass
class RunReport:
    """Unified outcome of one ``repro.run`` invocation."""

    spec: RunSpec
    strategy: str
    result: FaHaNaResult
    evaluations_run: int
    cache_hits: int
    cache_hit_rate: Optional[float]
    checkpoints_written: int
    # Trainings per fidelity stage and whether reward-plateau detection
    # stopped the run before its episode budget.
    evaluations_by_fidelity: Dict[str, int] = field(default_factory=dict)
    # Final snapshot of the engine's per-run metrics registry (see
    # repro.obs.metrics): counters/gauges/histograms keyed by metric name.
    metrics: Dict[str, Any] = field(default_factory=dict)
    early_stopped: bool = False
    # True when a cooperative stop request ended the run at a wave boundary
    # (the run directory then holds a checkpoint to resume from).
    cancelled: bool = False
    resumed_from: Optional[int] = None
    run_dir: Optional[str] = None
    telemetry_path: Optional[str] = None
    checkpoint_path: Optional[str] = None
    spec_path: Optional[str] = None
    # The live engine, for in-process inspection (cache contents, event bus);
    # deliberately excluded from to_dict().
    engine: Optional[SearchEngine] = field(default=None, repr=False, compare=False)

    @property
    def history(self):
        return self.result.history

    @property
    def best(self):
        return self.result.best

    def summary(self) -> str:
        """The search summary plus one engine-statistics line."""
        lines = [self.result.summary()]
        stats = (
            f"engine: strategy={self.strategy}, "
            f"{self.evaluations_run} evaluations run, "
            f"{self.cache_hits} cache hits"
        )
        if self.cache_hit_rate is not None:
            stats += f" (hit rate {self.cache_hit_rate:.1%})"
        stats += f", {self.checkpoints_written} checkpoints"
        if len(self.evaluations_by_fidelity) > 1:
            per_stage = ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.evaluations_by_fidelity.items())
            )
            stats += f"; trainings by fidelity: {per_stage}"
        if self.early_stopped:
            stats += "; stopped early (reward plateau)"
        if self.cancelled:
            stats += "; cancelled (resumable from the run-dir checkpoint)"
        lines.append(stats)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:  # repro-lint: disable=SER001 -- one-way by design: reports embed a live result/engine and are read as plain dicts
        """JSON-encodable form (spec, stats, paths and the full history)."""
        return {
            "spec": self.spec.to_dict(),
            "spec_cache_key": self.spec.cache_key(),
            "strategy": self.strategy,
            "evaluations_run": self.evaluations_run,
            "evaluations_by_fidelity": dict(self.evaluations_by_fidelity),
            "early_stopped": self.early_stopped,
            "cancelled": self.cancelled,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "checkpoints_written": self.checkpoints_written,
            "metrics": self.metrics,
            "resumed_from": self.resumed_from,
            "run_dir": self.run_dir,
            "telemetry_path": self.telemetry_path,
            "checkpoint_path": self.checkpoint_path,
            "spec_path": self.spec_path,
            "history": history_to_dict(self.result.history),
        }


def _resolve_spec(spec: SpecLike) -> RunSpec:
    if isinstance(spec, RunSpec):
        return spec.validate()
    if isinstance(spec, str) or isinstance(spec, os.PathLike):
        return RunSpec.from_file(os.fspath(spec))
    if isinstance(spec, dict):
        return RunSpec.from_dict(spec)
    raise TypeError(
        f"run() expects a RunSpec, a spec-file path or a dict, "
        f"got {type(spec).__name__}"
    )


def _resolve_engine_config(
    spec: RunSpec, explicit: Optional[EngineConfig]
) -> EngineConfig:
    """Explicit override > spec.engine > process default > plain serial.

    A spec with an engine section -- even an all-default one -- is honoured
    verbatim; only a spec whose engine is unset (None) falls through to the
    process-wide default.  Passing both an explicit engine *and* a spec
    engine section is a conflict (the same silent-override trap the legacy
    ``run_engine_search`` had), so it raises instead of guessing.
    """
    if explicit is not None and spec.engine is not None:
        raise ValueError(
            "engine configured twice: the spec's 'engine' section is set and "
            "an explicit EngineConfig was passed to run(); drop one of them"
        )
    return resolve_engine_config(explicit if explicit is not None else spec.engine)


def execute(
    spec: SpecLike,
    *,
    engine: Optional[EngineConfig] = None,
    resume: bool = False,
    train_dataset: Optional[GroupedDataset] = None,
    validation_dataset: Optional[GroupedDataset] = None,
    design_spec: Optional[DesignSpec] = None,
    stop_token: Optional[StopToken] = None,
    event_callback: Optional[Callable[[EngineEvent], None]] = None,
) -> RunReport:
    """Execute the run a spec describes, synchronously, in this thread.

    This is the one execution path behind both ``repro.run`` and the run
    service.  ``spec`` may be a :class:`RunSpec`, a path to a spec JSON file
    or a plain dict.  ``train_dataset``/``validation_dataset`` inject
    pre-built (e.g. normalised) splits in place of the spec's dataset
    section -- both must be given together; ``design_spec`` likewise
    overrides the design section with an already-materialised
    :class:`DesignSpec`.  When either is injected the spec no longer fully
    describes the run, so no ``run_spec.json`` is archived in the run
    directory (``spec_path`` stays None).  ``engine`` overrides the spec's
    engine section (setting both is an error); ``resume=True`` continues
    from the checkpoint in the engine's run directory.

    ``stop_token`` is checked at wave boundaries: once requested, the engine
    writes its checkpoint and returns a partial report with
    ``cancelled=True``.  ``event_callback`` subscribes to the engine's event
    bus before the run starts, so a caller sees the full live stream.
    """
    resolved = _resolve_spec(spec)
    if (train_dataset is None) != (validation_dataset is None):
        raise ValueError(
            "train_dataset and validation_dataset must be provided together"
        )
    engine_config = _resolve_engine_config(resolved, engine)

    # With injected datasets or design the spec no longer fully describes
    # the run, so the run directory must not archive it as re-launchable.
    spec_describes_run = train_dataset is None and design_spec is None
    if train_dataset is None:
        splits = resolved.dataset.build()
        train_dataset, validation_dataset = splits.train, splits.validation
    design = design_spec if design_spec is not None else resolved.design.build()

    strategy = get_strategy(resolved.strategy)
    search = strategy.factory(resolved, train_dataset, validation_dataset, design)

    search_engine = SearchEngine(search, engine_config, stop_token=stop_token)
    if event_callback is not None:
        search_engine.events.subscribe(event_callback)
    resumed_from: Optional[int] = None
    if resume:
        resumed_from = search_engine.restore()
    result = search_engine.run(resolved.search.episodes)

    # The archived spec records the *effective* engine configuration (a live
    # cache object cannot be serialized, so it is dropped -- its contents are
    # runtime state, not part of the run's description).
    archival_engine = (
        replace(engine_config, cache=None)
        if engine_config.cache is not None
        else engine_config
    )
    resolved = replace(resolved, engine=archival_engine)

    run_dir = engine_config.run_dir
    spec_path = None
    telemetry_path = None
    checkpoint_path = None
    if run_dir is not None:
        if spec_describes_run:
            spec_path = resolved.to_file(os.path.join(run_dir, RUN_SPEC_JSON))
        checkpoint_path = os.path.join(run_dir, CHECKPOINT_JSON)
        if engine_config.telemetry:
            telemetry_path = os.path.join(run_dir, "telemetry.jsonl")

    cache = search_engine.cache
    return RunReport(
        spec=resolved,
        strategy=resolved.strategy,
        result=result,
        evaluations_run=search_engine.evaluations_run,
        evaluations_by_fidelity=dict(search_engine.evaluations_by_fidelity),
        metrics=search_engine.metrics.snapshot(),
        early_stopped=search_engine.early_stopped,
        cancelled=search_engine.cancelled,
        cache_hits=search_engine.cache_hits,
        cache_hit_rate=cache.hit_rate if cache is not None else None,
        checkpoints_written=search_engine.checkpoints_written,
        resumed_from=resumed_from,
        run_dir=run_dir,
        telemetry_path=telemetry_path,
        checkpoint_path=checkpoint_path,
        spec_path=spec_path,
        engine=search_engine,
    )


def run(
    spec: SpecLike,
    *,
    engine: Optional[EngineConfig] = None,
    resume: bool = False,
    train_dataset: Optional[GroupedDataset] = None,
    validation_dataset: Optional[GroupedDataset] = None,
    design_spec: Optional[DesignSpec] = None,
) -> RunReport:
    """Execute the run a spec describes and return the unified report.

    Thin sugar over the run lifecycle API: the spec is submitted to an
    ephemeral in-process :class:`~repro.service.local.LocalExecutor` through
    :class:`~repro.service.client.RunClient` and the call blocks on
    ``handle.result()``.  Every argument is forwarded to :func:`execute`
    unchanged, so the report -- cache keys included -- is bit-for-bit
    identical to running the spec directly.  See :func:`execute` for the
    argument semantics.
    """
    # Imported lazily: repro.service builds on this module.
    from repro.service.client import RunClient

    handle = RunClient.local().submit(
        spec,
        engine=engine,
        resume=resume,
        train_dataset=train_dataset,
        validation_dataset=validation_dataset,
        design_spec=design_spec,
    )
    try:
        return handle.result()
    except KeyboardInterrupt:
        # The engine runs on a background thread now; without this it would
        # keep computing after Ctrl-C.  The cooperative cancel checkpoints at
        # the next wave boundary (when a run_dir is configured), so an
        # interrupted run is resumable just like a cancelled one.
        handle.cancel()
        raise
