"""Reproduction of "The Larger The Fairer? Small Neural Networks Can Achieve
Fairness for Edge Devices" (DAC 2022).

The package provides:

* :mod:`repro.nn` -- a from-scratch numpy deep-learning framework,
* :mod:`repro.blocks` -- the MB / DB / RB / CB block library of the paper,
* :mod:`repro.zoo` -- reference architectures used as competitors,
* :mod:`repro.data` -- the synthetic dermatology dataset substrate,
* :mod:`repro.fairness` -- group accuracy and unfairness-score metrics,
* :mod:`repro.hardware` -- edge-device latency / storage models,
* :mod:`repro.core` -- the FaHaNa fairness- and hardware-aware NAS framework
  (the paper's primary contribution) and the MONAS baseline,
* :mod:`repro.engine` -- the execution layer: parallel episodes, evaluation
  cache, checkpoint/resume,
* :mod:`repro.api` -- the declarative run API (serializable
  :class:`~repro.api.spec.RunSpec`, strategy registry, ``repro.run()``),
* :mod:`repro.service` -- the run lifecycle service: ``RunClient`` /
  ``RunHandle``, typed event streams, and the ``repro-search serve`` daemon,
* :mod:`repro.experiments` -- one harness per table / figure of the paper.

The recommended entry point is the declarative facade::

    import repro

    report = repro.run(repro.RunSpec.from_file("spec.json"))
    print(report.summary())
"""

from repro.version import __version__

# Lazy aliases of the declarative run API (PEP 562): keeps ``import repro``
# light while making ``repro.run(spec)`` the one-line front door.
_API_EXPORTS = (
    "run",
    "execute",
    "RunSpec",
    "RunReport",
    "ComputeSpec",
    "DatasetSpec",
    "DesignSpecConfig",
    "SearchParams",
    "PipelineSettings",
    "FidelityConfig",
    "register_strategy",
    "available_strategies",
    "get_strategy",
)

# Lazy aliases of the run lifecycle service (same PEP 562 mechanism).
_SERVICE_EXPORTS = (
    "RunClient",
    "RunHandle",
)

__all__ = ["__version__", *_API_EXPORTS, *_SERVICE_EXPORTS]


def __getattr__(name: str):
    if name in _API_EXPORTS:
        from repro import api

        return getattr(api, name)
    if name in _SERVICE_EXPORTS:
        from repro import service

        return getattr(service, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
