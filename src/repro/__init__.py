"""Reproduction of "The Larger The Fairer? Small Neural Networks Can Achieve
Fairness for Edge Devices" (DAC 2022).

The package provides:

* :mod:`repro.nn` -- a from-scratch numpy deep-learning framework,
* :mod:`repro.blocks` -- the MB / DB / RB / CB block library of the paper,
* :mod:`repro.zoo` -- reference architectures used as competitors,
* :mod:`repro.data` -- the synthetic dermatology dataset substrate,
* :mod:`repro.fairness` -- group accuracy and unfairness-score metrics,
* :mod:`repro.hardware` -- edge-device latency / storage models,
* :mod:`repro.core` -- the FaHaNa fairness- and hardware-aware NAS framework
  (the paper's primary contribution) and the MONAS baseline,
* :mod:`repro.experiments` -- one harness per table / figure of the paper.
"""

from repro.version import __version__

__all__ = ["__version__"]
