"""The run lifecycle client API: :class:`RunClient` and :class:`RunHandle`.

A run is something you *submit*, then watch, cancel or resume by id::

    client = RunClient.local(runs_root="runs")       # in-process executor
    client = RunClient.connect("http://host:8023")   # repro-search serve

    handle = client.submit("spec.json")
    for event in handle.events(follow=True):         # typed EngineEvent stream
        ...
    report = handle.result()                         # blocks; raises on failure

Both backends implement the same :class:`Executor` protocol, so everything
above is backend-agnostic; ``repro.run(spec)`` is exactly
``RunClient.local().submit(spec).result()``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Protocol

from repro.engine.events import EngineEvent


class Executor(Protocol):
    """Backend protocol of the run lifecycle API.

    ``submit`` returns a run id immediately (execution is asynchronous);
    every other method addresses a run by that id.  ``result`` returns the
    in-process :class:`~repro.api.run.RunReport` where one exists and the
    report's ``to_dict`` payload across process boundaries; ``report``
    always returns the dict payload.
    """

    def submit(self, spec: Any, **options: Any) -> str:
        ...

    def resume(self, run_id: str) -> str:
        ...

    def status(self, run_id: str) -> Dict[str, Any]:
        ...

    def result(self, run_id: str, timeout: Optional[float] = None) -> Any:
        ...

    def report(self, run_id: str) -> Dict[str, Any]:
        ...

    def cancel(self, run_id: str) -> Dict[str, Any]:
        ...

    def events(
        self, run_id: str, since: int = 0, follow: bool = False
    ) -> Iterator[EngineEvent]:
        ...

    def list_runs(self) -> List[Dict[str, Any]]:
        ...


class RunHandle:
    """One submitted run: status, typed event stream, result, cancellation."""

    def __init__(self, executor: Executor, run_id: str):
        self.executor = executor
        self.run_id = run_id

    def __repr__(self) -> str:
        return f"RunHandle({self.run_id!r})"

    def status(self) -> Dict[str, Any]:
        """The run's current lifecycle status (state, timestamps, error)."""
        return self.executor.status(self.run_id)

    @property
    def state(self) -> str:
        """Shorthand for ``status()['state']``."""
        return str(self.status()["state"])

    def events(self, since: int = 0, follow: bool = False) -> Iterator[EngineEvent]:
        """The run's typed event stream, replayed from index ``since``.

        ``follow=True`` blocks for new events until the run reaches a
        terminal state; ``follow=False`` drains what exists and returns.
        """
        return self.executor.events(self.run_id, since=since, follow=follow)

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until the run completes and return its report.

        Raises :class:`~repro.service.errors.RunCancelled` for a cancelled
        run and re-raises the run's own exception (or
        :class:`~repro.service.errors.RunFailed` over HTTP) for a failed one.
        """
        return self.executor.result(self.run_id, timeout=timeout)

    def report(self) -> Dict[str, Any]:
        """The finished run's report payload (``RunReport.to_dict()``)."""
        return self.executor.report(self.run_id)

    def cancel(self) -> Dict[str, Any]:
        """Request cooperative cancellation; returns the updated status.

        The engine honours the request at the next wave boundary, writes its
        checkpoint and stops -- the run stays resumable via
        :meth:`RunClient.resume`.
        """
        return self.executor.cancel(self.run_id)


class RunClient:
    """Submits :class:`~repro.api.spec.RunSpec` runs to an executor backend."""

    def __init__(self, executor: Executor):
        self.executor = executor

    @classmethod
    def local(
        cls,
        runs_root: Optional[str] = None,
        max_workers: Optional[int] = None,
    ) -> "RunClient":
        """A client over an in-process :class:`LocalExecutor`.

        Without ``runs_root`` runs are ephemeral (no on-disk registry) and
        each submission gets its own thread; with ``runs_root`` every run is
        registered under ``<runs_root>/<run_id>/`` and ``max_workers``
        bounds the worker-slot pool (defaulting to 1: strict FIFO).
        """
        from repro.service.local import LocalExecutor

        return cls(LocalExecutor(runs_root=runs_root, max_workers=max_workers))

    @classmethod
    def connect(cls, url: str, timeout: float = 10.0) -> "RunClient":
        """A client over the HTTP daemon at ``url`` (``repro-search serve``)."""
        from repro.service.remote import ServiceExecutor

        return cls(ServiceExecutor(url, timeout=timeout))

    def submit(self, spec: Any, **options: Any) -> RunHandle:
        """Submit a run (RunSpec, spec-file path or dict); returns its handle."""
        return RunHandle(self.executor, self.executor.submit(spec, **options))

    def resume(self, run_id: str) -> RunHandle:
        """Re-queue a cancelled/failed run from its checkpoint; same id."""
        return RunHandle(self.executor, self.executor.resume(run_id))

    def handle(self, run_id: str) -> RunHandle:
        """A handle to an already-submitted run (validates the id exists)."""
        self.executor.status(run_id)  # raises RunNotFound on an unknown id
        return RunHandle(self.executor, run_id)

    def list_runs(self) -> List[Dict[str, Any]]:
        """Status dicts of every run the executor knows, oldest first."""
        return self.executor.list_runs()
