"""The run lifecycle service: submit, watch, cancel and resume runs by id.

* :mod:`repro.service.client`   -- :class:`RunClient` / :class:`RunHandle`
  and the :class:`Executor` backend protocol,
* :mod:`repro.service.local`    -- :class:`LocalExecutor`: background-thread
  execution, bounded worker slots, on-disk run registry,
* :mod:`repro.service.remote`   -- :class:`ServiceExecutor`: the HTTP client
  for a ``repro-search serve`` daemon,
* :mod:`repro.service.daemon`   -- :class:`RunService`: the stdlib HTTP
  daemon itself,
* :mod:`repro.service.registry` -- the ``runs/<run_id>/`` directory layout,
* :mod:`repro.service.events`   -- typed, replayable event streams
  (:class:`EventLog` live, :func:`tail_telemetry` from ``telemetry.jsonl``),
* :mod:`repro.service.cli`      -- the ``repro-search`` serve/submit/status/
  tail/cancel/list subcommands.

``repro.run(spec)`` is sugar over this API: ``RunClient.local()
.submit(spec).result()``.
"""

from repro.service.client import Executor, RunClient, RunHandle
from repro.service.errors import (
    RunCancelled,
    RunFailed,
    RunNotFound,
    RunNotReady,
    ServiceError,
)
from repro.service.events import EventLog, tail_telemetry
from repro.service.local import LocalExecutor
from repro.service.registry import RunRegistry

__all__ = [
    "Executor",
    "RunClient",
    "RunHandle",
    "RunCancelled",
    "RunFailed",
    "RunNotFound",
    "RunNotReady",
    "ServiceError",
    "EventLog",
    "tail_telemetry",
    "LocalExecutor",
    "RunRegistry",
]
