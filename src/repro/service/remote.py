"""The HTTP executor backend: a client for ``repro-search serve``.

:class:`ServiceExecutor` implements the same
:class:`~repro.service.client.Executor` protocol as the in-process
:class:`~repro.service.local.LocalExecutor`, speaking the daemon's JSON
endpoints (see :mod:`repro.service.daemon`).  ``RunSpec`` JSON is the only
wire format: a submission POSTs the spec's canonical dict, and everything
that comes back (statuses, reports, events) is plain JSON -- events are
rebuilt into typed :class:`~repro.engine.events.EngineEvent` objects via
``EngineEvent.from_dict``, so consumers cannot tell the transports apart.

Transport faults are handled by the fleet's shared
:class:`~repro.fleet.retry.RetryPolicy`: connection-refused (a daemon
restarting) and 5xx answers (a daemon draining) retry on its deterministic
backoff schedule, while 4xx answers and non-idempotent calls -- submitting,
resuming, promoting -- never retry (a duplicate POST would duplicate the
work).  Every request carries an explicit timeout, so a stalled read fails
fast instead of wedging the caller forever.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.api.run import _resolve_spec
from repro.engine.events import EngineEvent
from repro.fleet.retry import RetryPolicy
from repro.service import registry as reg
from repro.service.errors import (
    RunCancelled,
    RunFailed,
    RunNotFound,
    RunNotReady,
    ServiceError,
)

_JSON_HEADERS = {"Content-Type": "application/json"}


class ServiceExecutor:
    """Talks to a ``repro-search serve`` daemon over HTTP."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        retry: Optional[RetryPolicy] = None,
    ):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry or RetryPolicy()

    # -- HTTP plumbing -------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        run_id: Optional[str] = None,
        timeout: Optional[float] = None,
        idempotent: bool = True,
        max_attempts: Optional[int] = None,
    ) -> Dict[str, Any]:
        """One JSON round trip under the shared retry policy.

        ``idempotent=False`` pins the call to a single attempt -- the
        resubmission of a mutating POST whose *response* was lost could have
        landed twice.  Reads and fenced/cancel-style POSTs retry through
        connection faults and 5xx answers on the policy's deterministic
        backoff schedule; 4xx answers surface immediately.
        """
        data = None if payload is None else json.dumps(payload).encode("utf-8")

        def attempt() -> Dict[str, Any]:
            request = urllib.request.Request(
                f"{self.base_url}{path}",
                data=data,
                headers=_JSON_HEADERS if data is not None else {},
                method=method,
            )
            with urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            ) as response:
                return json.load(response)

        try:
            return self.retry.call(
                attempt, idempotent=idempotent, max_attempts=max_attempts
            )
        except urllib.error.HTTPError as error:
            raise self._map_error(error, run_id) from None
        except urllib.error.URLError as error:
            raise ServiceError(
                f"run service unreachable at {self.base_url}: {error.reason}"
            ) from None

    def _map_error(
        self, error: urllib.error.HTTPError, run_id: Optional[str]
    ) -> Exception:
        """Translate the daemon's structured errors into the shared types."""
        message = ""
        try:
            body = json.loads(error.read().decode("utf-8", "replace"))
            message = str(body.get("error", {}).get("message", ""))
        except (ValueError, AttributeError):
            pass
        message = message or f"HTTP {error.code}"
        if error.code == 404 and run_id is not None:
            return RunNotFound(run_id)
        if error.code == 400:
            return ValueError(message)
        if error.code == 409 and run_id is not None:
            return RunNotReady(run_id, message)
        return ServiceError(message, status=error.code)

    # -- the Executor protocol ------------------------------------------------------
    def submit(self, spec: Any, **options: Any) -> str:
        unsupported = {
            name
            for name in ("engine", "train_dataset", "validation_dataset", "design_spec")
            if options.get(name) is not None
        }
        if unsupported or options.get("resume"):
            raise ValueError(
                "service submissions are pure RunSpec JSON; in-process "
                "options are not serializable: "
                f"{sorted(unsupported | ({'resume'} if options.get('resume') else set()))}"
                " (put the engine section in the spec, resume by run id)"
            )
        resolved = _resolve_spec(spec)
        # A retried submission whose first response was dropped would enqueue
        # the run twice -- one attempt only.
        response = self._request(
            "POST", "/runs", payload=resolved.to_dict(), idempotent=False
        )
        return str(response["run_id"])

    def resume(self, run_id: str) -> str:
        quoted = urllib.parse.quote(run_id, safe="")
        response = self._request(
            "POST",
            f"/runs/{quoted}/resume",
            payload={},
            run_id=run_id,
            idempotent=False,  # a duplicate resume re-queues the run twice
        )
        return str(response["run_id"])

    def status(self, run_id: str) -> Dict[str, Any]:
        quoted = urllib.parse.quote(run_id, safe="")
        return self._request("GET", f"/runs/{quoted}", run_id=run_id)

    def report(self, run_id: str) -> Dict[str, Any]:
        quoted = urllib.parse.quote(run_id, safe="")
        return self._request("GET", f"/runs/{quoted}/report", run_id=run_id)

    def result(
        self, run_id: str, timeout: Optional[float] = None, poll_interval: float = 0.3
    ) -> Dict[str, Any]:
        """Poll until the run terminates; return the report payload."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.status(run_id)
            state = status["state"]
            if state == reg.FINISHED:
                return self.report(run_id)
            if state == reg.CANCELLED:
                raise RunCancelled(run_id)
            if state == reg.FAILED:
                raise RunFailed(run_id, status.get("error") or "unknown error")
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(
                    f"run {run_id!r} did not complete within {timeout} seconds"
                )
            time.sleep(poll_interval)

    def cancel(self, run_id: str) -> Dict[str, Any]:
        quoted = urllib.parse.quote(run_id, safe="")
        return self._request(
            "POST", f"/runs/{quoted}/cancel", payload={}, run_id=run_id
        )

    def events(
        self,
        run_id: str,
        since: int = 0,
        follow: bool = False,
        poll_interval: float = 0.3,
    ) -> Iterator[EngineEvent]:
        """Page through the events endpoint; with ``follow`` poll until done."""
        cursor = since
        while True:
            events, cursor, done = self._events_page(run_id, cursor)
            for event in events:
                yield event
            if not follow or (done and not events):
                return
            if not events:
                time.sleep(poll_interval)

    def _events_page(
        self, run_id: str, since: int
    ) -> Tuple[List[EngineEvent], int, bool]:
        quoted = urllib.parse.quote(run_id, safe="")
        response = self._request(
            "GET", f"/runs/{quoted}/events?since={since}", run_id=run_id
        )
        events = [EngineEvent.from_dict(entry) for entry in response["events"]]
        return events, int(response["next"]), bool(response["done"])

    def list_runs(self) -> List[Dict[str, Any]]:
        return list(self._request("GET", "/runs")["runs"])

    # -- the model zoo ---------------------------------------------------------------
    def promote(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """POST /models/promote; returns the promoted entry's manifest.

        Promotion retrains the winning child deterministically, so it can
        outlast the default request timeout by a wide margin -- give it ten
        minutes instead.
        """
        response = self._request(
            "POST",
            "/models/promote",
            payload=payload,
            run_id=str(payload.get("run_id", "")),
            timeout=max(self.timeout, 600.0),
            idempotent=False,  # a duplicate promotion moves `latest` again
        )
        return dict(response["model"])

    def list_models(self) -> List[Dict[str, Any]]:
        return list(self._request("GET", "/models")["models"])

    def healthy(self) -> bool:
        """True when the daemon answers its health endpoint (single probe)."""
        try:
            return bool(
                self._request("GET", "/healthz", max_attempts=1).get("ok")
            )
        except ServiceError:
            return False
