"""The in-process executor backend: background threads + on-disk registry.

:class:`LocalExecutor` turns the synchronous :func:`repro.api.run.execute`
into the non-blocking lifecycle the :class:`~repro.service.client.RunClient`
API exposes:

* **Ephemeral mode** (``runs_root=None``): no on-disk registry; each
  submission runs on its own background thread.  This is what the
  ``repro.run`` sugar uses -- same execution path, zero extra artifacts.
* **Registry mode** (``runs_root=...``): every run gets a directory under
  the runs root (spec, status, telemetry, checkpoint, report) and a bounded
  worker-slot pool executes submissions in strict FIFO order -- submissions
  beyond the slot count queue.  This is the engine room of the HTTP daemon
  (``repro-search serve``) and of any shared-filesystem scheduler.

Cancellation is cooperative: each run carries a
:class:`~repro.engine.engine.StopToken` (file-backed in registry mode, so
``repro-search cancel`` works from another process); the engine stops at a
wave boundary and leaves a resumable checkpoint.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import replace
from typing import Any, Dict, Iterator, List, Optional

from repro.api.run import (
    RunReport,
    _resolve_engine_config,
    _resolve_spec,
    execute,
)
from repro.api.spec import RunSpec
from repro.engine.engine import StopToken
from repro.engine.events import EngineEvent
from repro.obs import metrics as obs_metrics
from repro.service import registry as reg
from repro.service.errors import (
    RunCancelled,
    RunNotFound,
    RunNotReady,
    ServiceDraining,
)
from repro.service.events import EventLog, tail_telemetry
from repro.service.registry import RunRegistry


class _Run:
    """In-memory state of one submitted run."""

    def __init__(self, run_id: str, stop_token: StopToken):
        self.run_id = run_id
        self.stop_token = stop_token
        self.events = EventLog()
        self.done = threading.Event()
        self.started = False
        self.report: Optional[RunReport] = None
        self.error: Optional[BaseException] = None
        self.resume = False
        # Execution inputs of an ephemeral run (registry runs re-load their
        # spec from run_spec.json so a daemon restart loses nothing).
        self.spec: Optional[RunSpec] = None
        self.options: Dict[str, Any] = {}
        # Ephemeral runs keep their status purely in memory.
        self.status: Dict[str, Any] = {}


class LocalExecutor:
    """Executes runs on background threads; see the module docstring."""

    # Finished _Run objects retained in memory (registry mode): beyond this,
    # the oldest are evicted -- their status/report/events all have
    # file-backed fallbacks, so only the live RunReport object is lost.
    MAX_RETAINED_RUNS = 64

    def __init__(
        self,
        runs_root: Optional[str] = None,
        max_workers: Optional[int] = None,
        recover: bool = False,
    ):
        self.registry = None if runs_root is None else RunRegistry(runs_root)
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive when given")
        if max_workers is None and self.registry is not None:
            max_workers = 1  # registry mode defaults to one strict-FIFO slot
        self.max_workers = max_workers  # None = one thread per submission
        self._runs: Dict[str, _Run] = {}
        self._lock = threading.Lock()
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue()
        self._workers: List[threading.Thread] = []
        self._busy_slots = 0
        self._draining = False
        self._register_metric_callbacks()
        if recover:
            if self.registry is None:
                raise ValueError("recover=True needs a runs_root")
            self._recover_stale_runs()

    def _register_metric_callbacks(self) -> None:
        """Expose the executor's state as scrape-time gauges (repro.obs).

        Callbacks are evaluated when ``/metrics`` is rendered, so they always
        reflect the live registry/queue; registering replaces any same-named
        callback, so the newest executor in a process owns the fleet gauges.
        """
        metrics = obs_metrics.get_registry()
        metrics.register_callback(
            "repro_service_worker_slots",
            "Configured worker slots (0 = one thread per submission)",
            lambda: float(self.max_workers or 0),
        )
        metrics.register_callback(
            "repro_service_slots_busy",
            "Worker slots currently executing a run",
            lambda: float(self._busy_slots),
        )
        metrics.register_callback(
            "repro_service_queue_depth",
            "Submissions waiting for a worker slot",
            lambda: float(self._queue.qsize()),
        )
        metrics.register_callback(
            "repro_service_runs", "Known runs by state", self._runs_by_state
        )

    def _runs_by_state(self) -> List[Any]:
        counts: Dict[str, int] = {}
        for status in self.list_runs():
            state = status.get("state", "unknown")
            counts[state] = counts.get(state, 0) + 1
        return [({"state": state}, float(count)) for state, count in sorted(counts.items())]

    def _recover_stale_runs(self) -> None:
        """Adopt runs a previous process left non-terminal (daemon restart).

        Queued runs re-enqueue in their original submission order (the spec
        is archived); runs stuck in 'running' are marked failed -- their
        engine died with the old process -- which makes them resumable from
        whatever checkpoint they last wrote.  Only an executor that *owns*
        the runs root may do this (the daemon passes ``recover=True``);
        side-car executors on a shared root must not, or they would hijack
        the owner's live runs.
        """
        for status in self.registry.list_statuses():
            run_id = status["run_id"]
            if status["state"] == reg.RUNNING:
                self.registry.update_status(
                    run_id,
                    state=reg.FAILED,
                    finished_at=time.time(),
                    error="interrupted: the executing process exited mid-run",
                )
            elif status["state"] == reg.QUEUED:
                run = _Run(
                    run_id, StopToken(path=self.registry.cancel_path(run_id))
                )
                with self._lock:
                    self._runs[run_id] = run
                self._enqueue(run_id)

    # -- submission ----------------------------------------------------------------
    def submit(self, spec: Any, **options: Any) -> str:
        """Validate and enqueue a run; returns its id without blocking.

        ``options`` are the keyword arguments of :func:`repro.api.run.execute`
        (``engine``, ``resume``, injected datasets/design).  Validation --
        spec schema, strategy lookup, engine-section conflicts -- happens
        here, synchronously, so a bad submission fails loudly at the
        submitter, not inside a worker thread.
        """
        if self._draining:
            raise ServiceDraining("submission")
        resolved = _resolve_spec(spec)
        engine = options.get("engine")
        if (options.get("train_dataset") is None) != (
            options.get("validation_dataset") is None
        ):
            raise ValueError(
                "train_dataset and validation_dataset must be provided together"
            )
        if self.registry is not None:
            if (
                options.get("train_dataset") is not None
                or options.get("design_spec") is not None
            ):
                raise ValueError(
                    "registry-managed runs must be fully described by their "
                    "spec; injected datasets/design specs cannot be archived"
                )
            if options.get("resume"):
                raise ValueError(
                    "registry-managed runs resume by id: call resume(run_id) "
                    "instead of submit(spec, resume=True)"
                )
            return self._submit_registered(resolved, engine)
        return self._submit_ephemeral(resolved, options)

    def _submit_registered(
        self, spec: RunSpec, engine: Optional[Any]
    ) -> str:
        # Resolve the effective engine configuration now (raises on the
        # spec-vs-explicit conflict) and re-root it into the registry's run
        # directory, so the archived run_spec.json is resume-ready verbatim.
        engine_config = _resolve_engine_config(spec, engine)
        if engine_config.cache is not None:
            raise ValueError(
                "a live cache object cannot back a registry-managed run; "
                "configure engine.cache_dir (an on-disk cache) instead"
            )
        run_id = reg.new_run_id()
        registry = self.registry
        effective = replace(
            engine_config, run_dir=registry.run_dir(run_id), telemetry=True
        )
        registry.create(replace(spec, engine=effective), run_id=run_id)
        run = _Run(run_id, StopToken(path=registry.cancel_path(run_id)))
        with self._lock:
            self._runs[run_id] = run
        self._enqueue(run_id)
        return run_id

    def _submit_ephemeral(self, spec: RunSpec, options: Dict[str, Any]) -> str:
        # Surface engine-section conflicts at submit time (the result is
        # discarded; execute() re-resolves identically in the worker).
        _resolve_engine_config(spec, options.get("engine"))
        run_id = f"local-{reg.new_run_id()}"
        run = _Run(run_id, StopToken())
        run.spec = spec
        run.options = dict(options)
        run.resume = bool(run.options.pop("resume", False))
        run.status = reg.initial_status(run_id, spec)
        with self._lock:
            self._runs[run_id] = run
        self._enqueue(run_id)
        return run_id

    def resume(self, run_id: str) -> str:
        """Re-queue a registered run from its checkpoint (same run id)."""
        if self._draining:
            raise ServiceDraining("resume")
        registry = self.registry
        if registry is None:
            raise ValueError(
                "resume-by-id needs a registry-backed executor (runs_root)"
            )
        status = registry.load_status(run_id)
        if status["state"] not in reg.TERMINAL_STATES:
            raise ValueError(
                f"run {run_id!r} is {status['state']}; only a finished, "
                "failed or cancelled run can be resumed"
            )
        from repro.engine.checkpoint import has_checkpoint

        if not has_checkpoint(registry.run_dir(run_id)):
            raise ValueError(
                f"run {run_id!r} has no checkpoint to resume from"
            )
        registry.clear_cancel(run_id)  # a stale marker would re-cancel instantly
        registry.update_status(
            run_id,
            state=reg.QUEUED,
            finished_at=None,
            error=None,
            cancel_requested=False,
        )
        run = _Run(run_id, StopToken(path=registry.cancel_path(run_id)))
        run.resume = True
        with self._lock:
            self._runs[run_id] = run
        self._enqueue(run_id)
        return run_id

    # -- worker plumbing -----------------------------------------------------------
    def _enqueue(self, run_id: str) -> None:
        if self.max_workers is None:
            thread = threading.Thread(
                target=self._execute, args=(run_id,), daemon=True,
                name=f"repro-run-{run_id}",
            )
            thread.start()
            return
        self._queue.put(run_id)
        with self._lock:
            self._workers = [t for t in self._workers if t.is_alive()]
            while len(self._workers) < self.max_workers:
                worker = threading.Thread(
                    target=self._worker_loop, daemon=True,
                    name=f"repro-run-worker-{len(self._workers)}",
                )
                worker.start()
                self._workers.append(worker)

    def _worker_loop(self) -> None:
        while True:
            run_id = self._queue.get()
            if run_id is None:  # shutdown sentinel
                return
            try:
                self._execute(run_id)
            finally:
                self._queue.task_done()

    @property
    def draining(self) -> bool:
        return self._draining

    def drain(self, timeout: Optional[float] = 30.0) -> List[str]:
        """Graceful wind-down: refuse new work, checkpoint what is running.

        New submissions/resumes raise :class:`ServiceDraining` from the
        moment this returns control flow to the caller.  Every run already
        *executing* gets a cooperative stop request -- the engine halts at
        its next wave boundary and leaves a resumable checkpoint -- and the
        drain waits (up to ``timeout`` seconds total) for those runs to
        finalize.  Queued-but-unstarted runs are left queued on disk: a
        registry-mode successor re-enqueues them on recovery, so no accepted
        work is lost.  Returns the ids of the runs that were checkpointed.
        """
        self._draining = True  # repro-lint: disable=THR001 -- one-way bool flip, atomic under the GIL; submit observes either value safely
        with self._lock:
            in_flight = [
                run
                for run in self._runs.values()
                if run.started and not run.done.is_set()
            ]
        for run in in_flight:
            run.stop_token.request()
            if self.registry is not None:
                self.registry.request_cancel(run.run_id)
        deadline = None if timeout is None else time.monotonic() + timeout
        for run in in_flight:
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            run.done.wait(timeout=remaining)
        self.shutdown(wait=True)
        return [run.run_id for run in in_flight]

    def shutdown(self, wait: bool = True) -> None:
        """Stop the worker pool; queued-but-unstarted runs stay queued."""
        with self._lock:
            workers = list(self._workers)
            self._workers = []
        for _ in workers:
            self._queue.put(None)
        if wait:
            for worker in workers:
                worker.join(timeout=5.0)

    # -- execution -----------------------------------------------------------------
    def _execute(self, run_id: str) -> None:
        run = self._runs[run_id]
        if self._draining and not run.started:
            # A worker dequeued this run after the drain began: leave it
            # queued (its on-disk state is untouched) for a recovering
            # successor to adopt instead of starting work we would only
            # have to interrupt.
            return
        with self._lock:
            if run.done.is_set():
                return  # cancelled while queued
            # Claimed under the lock: cancel() only short-circuits a run that
            # has not been claimed, so a run never both starts and finalizes.
            run.started = True
        if run.stop_token.is_set():
            self._finalize_cancelled_before_start(run)
            return
        self._set_status(run, state=reg.RUNNING, started_at=time.time())
        self._busy_slots += 1
        try:
            if self.registry is not None:
                spec = self.registry.load_spec(run_id)
                report = execute(
                    spec,
                    resume=run.resume,
                    stop_token=run.stop_token,
                    event_callback=run.events.append,
                )
            else:
                report = execute(
                    run.spec,
                    resume=run.resume,
                    stop_token=run.stop_token,
                    event_callback=run.events.append,
                    **run.options,
                )
            run.report = report
            state = reg.CANCELLED if report.cancelled else reg.FINISHED
            best = report.best
            self._set_status(
                run,
                state=state,
                finished_at=time.time(),
                episodes_done=len(report.history),
                best_reward=None if best is None else best.reward,
                resumed_from=report.resumed_from,
            )
            if self.registry is not None:
                self.registry.save_report(run_id, report.to_dict())
        except BaseException as error:  # re-raised to the caller by result()
            run.error = error
            self._set_status(
                run,
                state=reg.FAILED,
                finished_at=time.time(),
                error=f"{type(error).__name__}: {error}",
            )
        finally:
            self._busy_slots -= 1
            run.events.close()
            run.done.set()
            self._evict_finished_runs()

    def _evict_finished_runs(self) -> None:
        """Bound in-memory retention of completed registry runs.

        Everything an evicted run can still be asked for -- status, report,
        events -- is served from its run directory; only ``result()``'s live
        ``RunReport`` object is tied to the in-memory record.
        """
        if self.registry is None:
            return
        with self._lock:
            done = [run for run in self._runs.values() if run.done.is_set()]
            for run in done[: max(0, len(done) - self.MAX_RETAINED_RUNS)]:
                del self._runs[run.run_id]

    def _finalize_cancelled_before_start(self, run: _Run) -> None:
        self._set_status(run, state=reg.CANCELLED, finished_at=time.time())
        run.events.close()
        run.done.set()

    def _set_status(self, run: _Run, **changes: Any) -> Dict[str, Any]:
        with self._lock:
            if self.registry is not None:
                return self.registry.update_status(run.run_id, **changes)
            run.status.update(changes)
            return dict(run.status)

    # -- lifecycle queries ----------------------------------------------------------
    def _get_run(self, run_id: str) -> Optional[_Run]:
        with self._lock:
            return self._runs.get(run_id)

    def status(self, run_id: str) -> Dict[str, Any]:
        run = self._get_run(run_id)
        if self.registry is not None:
            return self.registry.load_status(run_id)  # raises RunNotFound
        if run is None:
            raise RunNotFound(run_id)
        with self._lock:
            return dict(run.status)

    def result(self, run_id: str, timeout: Optional[float] = None) -> RunReport:
        """Block until the run completes; return the live RunReport object."""
        run = self._get_run(run_id)
        if run is None:
            raise RunNotFound(run_id)
        if not run.done.wait(timeout=timeout):
            raise TimeoutError(
                f"run {run_id!r} did not complete within {timeout} seconds"
            )
        if run.error is not None:
            raise run.error
        if run.report is None or run.report.cancelled:
            raise RunCancelled(run_id)
        return run.report

    def report(self, run_id: str) -> Dict[str, Any]:
        """The finished run's ``to_dict`` payload (works across restarts)."""
        run = self._get_run(run_id)
        if run is not None and run.report is not None:
            return run.report.to_dict()
        if self.registry is not None:
            payload = self.registry.load_report(run_id)
            if payload is not None:
                return payload
        status = self.status(run_id)  # raises RunNotFound on an unknown id
        raise RunNotReady(run_id, status["state"])

    def cancel(self, run_id: str) -> Dict[str, Any]:
        run = self._get_run(run_id)
        if run is None:
            if self.registry is not None and self.registry.exists(run_id):
                # A run owned by another process on the shared runs root:
                # the marker file reaches its file-backed stop token.
                return self.registry.request_cancel(run_id)
            raise RunNotFound(run_id)
        if run.done.is_set():
            return self.status(run_id)
        run.stop_token.request()
        if self.registry is not None:
            self.registry.request_cancel(run_id)  # marker file + status flag
        else:
            self._set_status(run, cancel_requested=True)
        # A run still waiting for a worker slot never starts: finalize now so
        # cancel-while-queued is immediate rather than deferred to dequeue.
        with self._lock:
            finalize = not run.started and not run.done.is_set()
        if finalize:
            self._finalize_cancelled_before_start(run)
        return self.status(run_id)

    def events(
        self, run_id: str, since: int = 0, follow: bool = False
    ) -> Iterator[EngineEvent]:
        run = self._get_run(run_id)
        if run is not None:
            return run.events.iter(since=since, follow=follow)
        if self.registry is not None and self.registry.exists(run_id):
            return tail_telemetry(
                self.registry.telemetry_path(run_id), since=since, follow=follow
            )
        raise RunNotFound(run_id)

    def list_runs(self) -> List[Dict[str, Any]]:
        if self.registry is not None:
            return self.registry.list_statuses()
        with self._lock:
            runs = sorted(
                self._runs.values(), key=lambda run: run.status["created_at"]
            )
            return [dict(run.status) for run in runs]
