"""Exception types of the run lifecycle API.

Shared by every executor backend so callers handle one vocabulary: a local
in-process run and a run behind the HTTP daemon raise the same types for the
same conditions (unknown id, cancelled run, report not ready).
"""

from __future__ import annotations

from typing import Optional


class RunNotFound(KeyError):
    """No run with the given id is known to the executor."""

    def __init__(self, run_id: str):
        super().__init__(run_id)
        self.run_id = run_id

    def __str__(self) -> str:  # KeyError repr-quotes its arg; keep it readable
        return f"unknown run id {self.run_id!r}"


class RunCancelled(RuntimeError):
    """The run was cancelled; its checkpoint makes it resumable."""

    def __init__(self, run_id: str):
        super().__init__(
            f"run {run_id!r} was cancelled at a wave boundary; "
            f"resume it to continue from its checkpoint"
        )
        self.run_id = run_id


class RunFailed(RuntimeError):
    """The run raised; carries the remote error message.

    Only raised by executors that cannot re-raise the original exception
    (the HTTP backend); the local executor re-raises the real one.
    """

    def __init__(self, run_id: str, message: str):
        super().__init__(f"run {run_id!r} failed: {message}")
        self.run_id = run_id
        self.message = message


class RunNotReady(RuntimeError):
    """The run has not produced the requested artifact (report) yet."""

    def __init__(self, run_id: str, state: str):
        super().__init__(f"run {run_id!r} has no report yet (state: {state})")
        self.run_id = run_id
        self.state = state


class ServiceDraining(RuntimeError):
    """The service is shutting down and no longer accepts new work.

    Raised for submissions (and mapped to HTTP 503 by the daemon) once a
    drain has begun; in-flight runs continue to checkpoint and finish.
    """

    def __init__(self, what: str = "submission"):
        super().__init__(
            f"the run service is draining and rejected the {what}; "
            f"retry against another instance or after restart"
        )
        self.what = what


class ServiceError(RuntimeError):
    """The run service answered with an unexpected error or is unreachable."""

    def __init__(self, message: str, status: Optional[int] = None):
        super().__init__(message)
        self.status = status
