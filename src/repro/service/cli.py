"""``repro-search`` run-service subcommands: serve / submit / status / tail /
cancel / list / promote.

Every subcommand addresses runs either **through the daemon** (``--url``) or
**directly on a runs root** (``--runs-root``, the default ``runs``) -- the
registry is plain files, so status, tail, cancel and list work offline on
any run directory, including one produced by a daemon that has since exited.
``tail`` additionally accepts a run *directory path*, so any run that wrote
``telemetry.jsonl`` (service-managed or a plain ``engine.run_dir``) can be
followed with a live best-reward/episode progress line.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
from typing import Any, Dict, Iterator, Optional

from repro.engine.events import (
    CHECKPOINT_WRITTEN,
    CONSUMER_ERROR,
    EARLY_STOPPED,
    EPISODE_FINISHED,
    METRICS_UPDATED,
    RUN_CANCELLED,
    RUN_FINISHED,
    RUN_STARTED,
    EngineEvent,
)
from repro.service import registry as reg
from repro.service.events import tail_telemetry
from repro.service.registry import RunRegistry

DEFAULT_RUNS_ROOT = "runs"
DEFAULT_ZOO_ROOT = "zoo"
DEFAULT_PORT = 8023


# -- shared argument wiring ---------------------------------------------------------
def add_target_arguments(parser: argparse.ArgumentParser) -> None:
    """``--url`` (daemon) vs ``--runs-root`` (offline registry) selection."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--url",
        default=None,
        help="address of a repro-search serve daemon (e.g. http://127.0.0.1:8023)",
    )
    group.add_argument(
        "--runs-root",
        default=None,
        help=f"operate directly on this runs root (default: {DEFAULT_RUNS_ROOT!r})",
    )


def _remote(args: argparse.Namespace):
    from repro.service.remote import ServiceExecutor

    return ServiceExecutor(args.url)


def _registry(args: argparse.Namespace) -> RunRegistry:
    return RunRegistry(args.runs_root or DEFAULT_RUNS_ROOT)


# -- progress rendering --------------------------------------------------------------
class ProgressPrinter:
    """Turns an engine event stream into human progress lines.

    Tracks the running best reward so a tail shows search progress, not just
    raw telemetry.
    """

    def __init__(self) -> None:
        self.best_reward = float("-inf")
        self.episodes_done = 0

    def line(self, event: EngineEvent) -> Optional[str]:
        payload = event.payload
        if event.kind == RUN_STARTED:
            return (
                f"run started: {payload.get('episodes')} episodes "
                f"(from episode {payload.get('start_episode', 0)}, "
                f"backend={payload.get('backend')}, wave={payload.get('wave_size')})"
            )
        if event.kind == EPISODE_FINISHED:
            reward = float(payload.get("reward", float("nan")))
            self.best_reward = max(self.best_reward, reward)
            self.episodes_done += 1
            cached = " cache" if payload.get("cache_hit") else ""
            return (
                f"[ep {event.episode:>4}] reward={reward:+.4f} "
                f"best={self.best_reward:+.4f} "
                f"acc={float(payload.get('accuracy', 0.0)):.3f}"
                f"{cached}"
            )
        if event.kind == METRICS_UPDATED:
            elapsed = float(payload.get("elapsed_seconds", 0.0))
            eps = float(payload.get("episodes_per_second", 0.0))
            line = (
                f"progress: {payload.get('episodes_done')} episodes in "
                f"{elapsed:.1f}s ({eps:.2f} ep/s"
            )
            hit_rate = payload.get("cache_hit_rate")
            if hit_rate is not None:
                line += f", cache hit rate {float(hit_rate):.1%}"
            return line + ")"
        if event.kind == CHECKPOINT_WRITTEN:
            return f"checkpoint written (next episode {payload.get('next_episode')})"
        if event.kind == EARLY_STOPPED:
            return (
                f"early stop: reward plateaued since episode "
                f"{payload.get('best_episode')}"
            )
        if event.kind == RUN_CANCELLED:
            return (
                f"cancel honoured at episode {payload.get('episodes_done')} "
                f"of {payload.get('episodes')}"
            )
        if event.kind == CONSUMER_ERROR:
            return (
                f"warning: event consumer {payload.get('consumer')} failed: "
                f"{payload.get('error')}"
            )
        if event.kind == RUN_FINISHED:
            verdict = "cancelled" if payload.get("cancelled") else "finished"
            best = (
                f"best reward {self.best_reward:+.4f}"
                if self.episodes_done
                else "no episodes"
            )
            return (
                f"run {verdict}: {payload.get('episodes')} episodes recorded, "
                f"{payload.get('evaluations_run')} evaluations, "
                f"{payload.get('cache_hits')} cache hits, {best}"
            )
        return None


def print_progress(events: Iterator[EngineEvent]) -> int:
    """Stream progress lines to stdout; returns the episode count seen."""
    printer = ProgressPrinter()
    for event in events:
        line = printer.line(event)
        if line is not None:
            print(line, flush=True)
    return printer.episodes_done


def _print_status(status: Dict[str, Any]) -> None:
    print(json.dumps(status, indent=2, sort_keys=True))


def _status_row(status: Dict[str, Any]) -> str:
    best = status.get("best_reward")
    return (
        f"{status['run_id']:32s} {status['state']:9s} "
        f"{status.get('strategy') or '?':10s} "
        f"episodes={status.get('episodes_done') if status.get('episodes_done') is not None else '-'}"
        f"/{status.get('episodes', '-')} "
        f"best={'-' if best is None else f'{best:+.4f}'}"
    )


# -- subcommands ---------------------------------------------------------------------
def cmd_serve(args: argparse.Namespace) -> int:
    from repro.fleet.supervisor import FleetConfig
    from repro.service.daemon import RunService

    service = RunService(
        runs_root=args.runs_root or DEFAULT_RUNS_ROOT,
        host=args.host,
        port=args.port,
        max_workers=args.workers,
        quiet=not args.verbose,
        zoo_root=args.zoo_root or DEFAULT_ZOO_ROOT,
        max_batch_size=args.max_batch_size,
        flush_ms=args.flush_ms,
        max_queue=args.max_queue,
        fleet=FleetConfig(
            heartbeat_interval=args.heartbeat_interval,
            lease_seconds=args.lease_seconds,
        ),
        store_root=args.store_root,
        store_max_bytes=(
            None
            if args.store_budget_mb is None
            else int(args.store_budget_mb * 1024 * 1024)
        ),
    )
    print(
        f"run service listening on {service.url} "
        f"(runs root {service.executor.registry.root}, "
        f"zoo root {service.model_server.zoo.root}, "
        f"store root {service.store.root}, "
        f"{args.workers} worker slot{'s' if args.workers != 1 else ''}, "
        f"serving batch<={args.max_batch_size} flush={args.flush_ms}ms)",
        flush=True,
    )
    stop = threading.Event()
    drain_requested = threading.Event()

    def _handle_sigint(signum, frame):  # noqa: ARG001
        stop.set()

    def _handle_sigterm(signum, frame):  # noqa: ARG001
        # SIGTERM (the orchestrator's polite kill) drains; SIGINT (an
        # operator's ctrl-C) still stops immediately.
        drain_requested.set()
        stop.set()

    signal.signal(signal.SIGINT, _handle_sigint)
    signal.signal(signal.SIGTERM, _handle_sigterm)
    service.start()
    try:
        while not stop.wait(timeout=0.5):
            pass
        if drain_requested.is_set():
            print(
                "draining: refusing new submissions, checkpointing in-flight "
                "runs, winding down fleet agents",
                flush=True,
            )
            checkpointed = service.drain(timeout=args.drain_timeout)
            for run_id in checkpointed:
                print(f"drained run {run_id} (resumable checkpoint)", flush=True)
            print("drain complete", flush=True)
    finally:
        service.shutdown()
        print("run service stopped", flush=True)
    return 0


def cmd_agent(args: argparse.Namespace) -> int:
    """Run one fleet worker agent against a serve daemon."""
    from repro.fleet.agent import WorkerAgent

    agent = WorkerAgent(
        args.url,
        name=args.name,
        timeout=args.timeout,
        register_timeout=args.register_timeout,
        daemon_timeout=args.daemon_timeout,
    )

    def _handle_signal(signum, frame):  # noqa: ARG001
        agent.stop()

    signal.signal(signal.SIGINT, _handle_signal)
    signal.signal(signal.SIGTERM, _handle_signal)
    print(f"worker agent joining fleet at {args.url}", flush=True)
    code = agent.run()
    if code != 0:
        print(
            f"error: no daemon reachable at {args.url} within "
            f"{args.register_timeout}s",
            file=sys.stderr,
        )
        return code
    if agent.draining:
        reason = "daemon draining"
    elif agent.lost_daemon:
        reason = "daemon unreachable"
    else:
        reason = "stopped"
    print(
        f"agent {agent.name or '?'} exiting ({reason}): "
        f"{agent.tasks_done} task(s) completed",
        flush=True,
    )
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    from repro.api.spec import RunSpec
    from repro.service.client import RunClient

    spec = RunSpec.from_file(args.spec)
    if args.url:
        client = RunClient.connect(args.url)
    else:
        # No daemon: execute in this process against the runs root.  The
        # submission would die with the process, so waiting is implied.
        client = RunClient.local(
            runs_root=args.runs_root or DEFAULT_RUNS_ROOT, max_workers=1
        )
        if not (args.wait or args.follow):
            print(
                "note: no --url given; executing in-process and waiting "
                "(use repro-search serve for queued submissions)",
                file=sys.stderr,
            )
            args.wait = True
    handle = client.submit(spec)
    if args.quiet:
        print(handle.run_id)
    else:
        print(f"submitted run {handle.run_id} (strategy={spec.strategy}, "
              f"{spec.search.episodes} episodes)")
    if args.follow:
        print_progress(handle.events(follow=True))
    if args.wait or args.follow:
        from repro.service.errors import RunCancelled, RunFailed

        try:
            handle.result()
        except (RunCancelled, RunFailed) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        if not args.quiet:
            status = handle.status()
            best = status.get("best_reward")
            print(
                f"run {handle.run_id} finished: "
                f"{status.get('episodes_done')} episodes, "
                f"best reward {'-' if best is None else format(best, '+.4f')}"
            )
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    if args.url:
        _print_status(_remote(args).status(args.run_id))
    else:
        _print_status(_registry(args).load_status(args.run_id))
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    statuses = (
        _remote(args).list_runs() if args.url else _registry(args).list_statuses()
    )
    if not statuses:
        print("no runs")
    else:
        for status in statuses:
            print(_status_row(status))

    # Deployable zoo entries, so operators see what is promoted without
    # poking the filesystem.  Offline only: the registry is plain files.
    zoo_root = getattr(args, "zoo_root", None) or DEFAULT_ZOO_ROOT
    if not args.url and os.path.isdir(zoo_root):
        from repro.serving.registry import ZooRegistry

        entries = ZooRegistry(zoo_root).list_entries()
        if entries:
            print(f"\nzoo ({len(entries)} deployable "
                  f"model{'s' if len(entries) != 1 else ''}):")
            for entry in entries:
                print(f"  {entry.summary_row}")
    return 0


def cmd_promote(args: argparse.Namespace) -> int:
    """Promote the best child of a finished run into the model zoo."""
    if args.url:
        payload: Dict[str, Any] = {"run_id": args.run_id}
        if args.name:
            payload["name"] = args.name
        if args.episode is not None:
            payload["episode"] = args.episode
        from repro.service.remote import ServiceExecutor

        manifest = ServiceExecutor(args.url).promote(payload)
    else:
        from repro.serving.registry import ZooRegistry

        entry = ZooRegistry(args.zoo_root or DEFAULT_ZOO_ROOT).promote_run(
            _registry(args), args.run_id, name=args.name, episode=args.episode
        )
        manifest = entry.manifest
    print(
        f"promoted {manifest['source_run_id']} episode {manifest['episode']} -> "
        f"{manifest['name']}:{manifest['version']}"
    )
    print(
        f"  accuracy={manifest['accuracy']:.2%} "
        f"unfairness={manifest['unfairness']:.4f} "
        f"latency={manifest['latency_class']} "
        f"({manifest['reference_latency_ms']:.0f}ms on "
        f"{manifest['reference_device']})"
    )
    print(f"  weights blob {manifest['weights_blob']} (content-hash deduped)")
    return 0


def cmd_cancel(args: argparse.Namespace) -> int:
    if args.url:
        status = _remote(args).cancel(args.run_id)
    else:
        # Offline: the marker file reaches the executing process's
        # file-backed stop token through the shared filesystem.
        status = _registry(args).request_cancel(args.run_id)
    print(
        f"cancel requested for {args.run_id} "
        f"(state: {status['state']}); the engine stops at the next wave "
        "boundary and leaves a resumable checkpoint"
    )
    return 0


def cmd_tail(args: argparse.Namespace) -> int:
    """Tail a run's typed event stream -- daemon, registry or bare run dir."""
    if args.url:
        events = _remote(args).events(
            args.run, since=args.since, follow=args.follow
        )
        print_progress(events)
        return 0
    if os.path.isdir(args.run):
        telemetry = os.path.join(args.run, reg.TELEMETRY_JSONL)
    else:
        registry = _registry(args)
        if not os.path.isdir(registry.run_dir(args.run)):
            print(
                f"error: {args.run!r} is neither a run directory nor a run id "
                f"under {registry.root!r}",
                file=sys.stderr,
            )
            return 2
        telemetry = registry.telemetry_path(args.run)
    if not args.follow and not os.path.exists(telemetry):
        print(f"error: no telemetry stream at {telemetry!r}", file=sys.stderr)
        return 2
    episodes = print_progress(
        tail_telemetry(telemetry, since=args.since, follow=args.follow)
    )
    if episodes == 0 and args.since == 0:
        print("(no episodes in the telemetry stream)")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Export a run's spans as Chrome trace_event JSON (chrome://tracing)."""
    from repro.obs.trace_export import export_chrome_trace

    if os.path.isdir(args.run):
        run_dir = args.run
    else:
        registry = _registry(args)
        run_dir = registry.run_dir(args.run)
        if not os.path.isdir(run_dir):
            print(
                f"error: {args.run!r} is neither a run directory nor a run id "
                f"under {registry.root!r}",
                file=sys.stderr,
            )
            return 2
    try:
        summary = export_chrome_trace(run_dir, out_path=args.out)
    except (FileNotFoundError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(
        f"wrote {summary['path']} ({summary['spans']} spans across "
        f"{summary['threads']} timelines); open it in chrome://tracing "
        "or https://ui.perfetto.dev"
    )
    return 0


def cmd_top(args: argparse.Namespace) -> int:
    """Live dashboard over a daemon's /metrics and run registry."""
    from repro.obs.top import run_top

    if not args.url:
        print(
            "error: top needs a daemon (--url http://HOST:PORT); it scrapes "
            "GET /metrics, which only repro-search serve exposes",
            file=sys.stderr,
        )
        return 2
    try:
        return run_top(
            args.url,
            interval=args.interval,
            iterations=1 if args.once else None,
            clear=not args.once,
        )
    except OSError as error:
        print(f"error: cannot reach {args.url}: {error}", file=sys.stderr)
        return 2


# -- parser wiring -------------------------------------------------------------------
def add_service_subparsers(subparsers: argparse._SubParsersAction) -> None:
    """Attach the run-service subcommands to the ``repro-search`` parser."""
    serve = subparsers.add_parser(
        "serve", help="start the local run service daemon (HTTP, RunSpec JSON in)"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=DEFAULT_PORT, help="bind port")
    serve.add_argument(
        "--runs-root",
        default=None,
        help=f"directory for run registries (default: {DEFAULT_RUNS_ROOT!r})",
    )
    serve.add_argument(
        "--workers", type=int, default=1, help="concurrent run slots (FIFO queue)"
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )
    serve.add_argument(
        "--zoo-root",
        default=None,
        help=f"model zoo directory served at /models (default: {DEFAULT_ZOO_ROOT!r})",
    )
    serve.add_argument(
        "--max-batch-size",
        type=int,
        default=32,
        help="micro-batcher flushes once this many rows are queued",
    )
    serve.add_argument(
        "--flush-ms",
        type=float,
        default=5.0,
        help="micro-batcher flushes a partial batch after this many milliseconds",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=256,
        help="queued rows beyond this are rejected with HTTP 429",
    )
    serve.add_argument(
        "--heartbeat-interval",
        type=float,
        default=2.0,
        help="fleet agents heartbeat this often (seconds)",
    )
    serve.add_argument(
        "--lease-seconds",
        type=float,
        default=15.0,
        help="unacknowledged fleet task leases expire after this long",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        help="SIGTERM drain waits this long for in-flight runs to checkpoint",
    )
    serve.add_argument(
        "--store-root",
        default=None,
        help="shared artifact-store directory (default: <runs-root>/_store)",
    )
    serve.add_argument(
        "--store-budget-mb",
        type=float,
        default=None,
        help="evict least-recently-used store objects beyond this many MiB",
    )

    agent = subparsers.add_parser(
        "agent", help="run a fleet worker agent against a serve daemon"
    )
    agent.add_argument(
        "--url",
        required=True,
        help="address of the repro-search serve daemon to join",
    )
    agent.add_argument(
        "--name", default=None, help="agent display name (default: generated)"
    )
    agent.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="per-request HTTP timeout (seconds)",
    )
    agent.add_argument(
        "--register-timeout",
        type=float,
        default=30.0,
        help="give up if the daemon is unreachable for this long",
    )
    agent.add_argument(
        "--daemon-timeout",
        type=float,
        default=60.0,
        help="after joining, exit once the daemon has been continuously "
        "unreachable for this long",
    )

    submit = subparsers.add_parser(
        "submit", help="submit a run spec to the service (or runs root)"
    )
    submit.add_argument("spec", help="path to a RunSpec JSON file")
    add_target_arguments(submit)
    submit.add_argument(
        "--wait", action="store_true", help="block until the run completes"
    )
    submit.add_argument(
        "--follow", action="store_true", help="stream progress while waiting"
    )
    submit.add_argument(
        "--quiet", action="store_true", help="print only the run id"
    )

    status = subparsers.add_parser("status", help="print one run's status JSON")
    status.add_argument("run_id", help="run id")
    add_target_arguments(status)

    tail = subparsers.add_parser(
        "tail",
        help="follow a run's telemetry as progress lines "
        "(run id, or any run directory with telemetry.jsonl)",
    )
    tail.add_argument("run", help="run id or run directory path")
    add_target_arguments(tail)
    tail.add_argument(
        "--follow", action="store_true", help="keep following until the run ends"
    )
    tail.add_argument(
        "--since", type=int, default=0, help="skip this many leading events"
    )

    cancel = subparsers.add_parser(
        "cancel", help="request cooperative cancellation of a run"
    )
    cancel.add_argument("run_id", help="run id")
    add_target_arguments(cancel)

    list_parser = subparsers.add_parser(
        "list", help="list known runs and promoted zoo models"
    )
    add_target_arguments(list_parser)
    list_parser.add_argument(
        "--zoo-root",
        default=None,
        help=f"model zoo directory to list (default: {DEFAULT_ZOO_ROOT!r})",
    )

    promote = subparsers.add_parser(
        "promote",
        help="promote the best child of a finished run into the model zoo",
    )
    promote.add_argument("run_id", help="finished run id")
    add_target_arguments(promote)
    promote.add_argument(
        "--zoo-root",
        default=None,
        help=f"model zoo directory (default: {DEFAULT_ZOO_ROOT!r})",
    )
    promote.add_argument(
        "--name",
        default=None,
        help="zoo model name (default: derived from the architecture descriptor)",
    )
    promote.add_argument(
        "--episode",
        type=int,
        default=None,
        help="promote this episode's child instead of the best-reward one",
    )

    trace = subparsers.add_parser(
        "trace",
        help="export a run's spans as Chrome trace_event JSON "
        "(open in chrome://tracing or ui.perfetto.dev)",
    )
    trace.add_argument("run", help="run id or run directory path")
    trace.add_argument(
        "--runs-root",
        default=None,
        help=f"resolve run ids against this runs root (default: {DEFAULT_RUNS_ROOT!r})",
    )
    trace.add_argument(
        "--out", default=None, help="output path (default: <run_dir>/trace.json)"
    )

    top = subparsers.add_parser(
        "top", help="live terminal dashboard over a serve daemon's /metrics"
    )
    top.add_argument(
        "--url",
        default=f"http://127.0.0.1:{DEFAULT_PORT}",
        help="daemon address to scrape",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, help="seconds between scrapes"
    )
    top.add_argument(
        "--once", action="store_true", help="render one frame and exit"
    )


SERVICE_COMMANDS = {
    "serve": cmd_serve,
    "agent": cmd_agent,
    "submit": cmd_submit,
    "status": cmd_status,
    "tail": cmd_tail,
    "cancel": cmd_cancel,
    "list": cmd_list,
    "promote": cmd_promote,
    "trace": cmd_trace,
    "top": cmd_top,
}
