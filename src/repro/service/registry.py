"""On-disk run registry: one directory per run under a runs root.

Layout (shared by the local executor, the HTTP daemon and the offline CLI)::

    <runs_root>/
      <run_id>/
        run_spec.json       resolved spec incl. the effective engine section
        status.json         lifecycle state (atomic writes)
        telemetry.jsonl     event stream (JsonlTelemetry)
        checkpoint.json/.npz engine checkpoint (resume / cancel-resume)
        report.json         RunReport.to_dict() once the run finished
        cancel.requested    marker file: out-of-process cancellation request

The registry is deliberately file-based: every consumer -- the daemon, a
`repro-search tail` in another terminal, a future multi-host scheduler --
coordinates through the filesystem, so no state is lost when the process
serving a run goes away.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import uuid
from typing import Any, Dict, List, Optional

from repro.api.spec import RunSpec
from repro.service.errors import RunNotFound

RUN_SPEC_JSON = "run_spec.json"
STATUS_JSON = "status.json"
REPORT_JSON = "report.json"
TELEMETRY_JSONL = "telemetry.jsonl"
CANCEL_MARKER = "cancel.requested"

# Lifecycle states of a run.
QUEUED = "queued"
RUNNING = "running"
FINISHED = "finished"
FAILED = "failed"
CANCELLED = "cancelled"
TERMINAL_STATES = (FINISHED, FAILED, CANCELLED)


def atomic_write_json(path: str, payload: Any) -> None:
    """Durably replace ``path`` with ``payload`` as JSON; never torn, never
    clobbered by a concurrent writer.

    The temp file comes from ``mkstemp`` *in the destination directory* --
    unique per writer (two daemons on a shared runs root cannot truncate
    each other's half-written temp file, unlike a fixed ``<path>.tmp``) and
    on the same filesystem, so the final ``os.replace`` is atomic.  The
    ``fsync`` before the rename keeps a power loss from leaving the new name
    pointing at not-yet-flushed data; without it a crashed daemon could
    leave exactly the torn JSON this function exists to prevent.
    """
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(
        dir=directory, prefix=f".{os.path.basename(path)}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except FileNotFoundError:
            pass
        raise


def new_run_id() -> str:
    """A sortable, collision-safe run id (UTC timestamp + random suffix)."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"{stamp}-{uuid.uuid4().hex[:8]}"


def initial_status(
    run_id: str, spec: RunSpec, run_dir: Optional[str] = None
) -> Dict[str, Any]:
    """The queued-state status dict of a fresh submission.

    One schema for registry-backed and ephemeral runs, so every status
    consumer (CLI rows, HTTP clients) sees the same keys either way.
    """
    return {
        "run_id": run_id,
        "state": QUEUED,
        "strategy": spec.strategy,
        "episodes": spec.search.episodes,
        "spec_cache_key": spec.cache_key(),
        "created_at": time.time(),
        "started_at": None,
        "finished_at": None,
        "episodes_done": None,
        "best_reward": None,
        "resumed_from": None,
        "error": None,
        "cancel_requested": False,
        "run_dir": run_dir,
    }


class RunRegistry:
    """Creates, reads and updates the per-run directories of one runs root."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    # -- paths --------------------------------------------------------------------
    def run_dir(self, run_id: str) -> str:
        return os.path.join(self.root, run_id)

    def spec_path(self, run_id: str) -> str:
        return os.path.join(self.run_dir(run_id), RUN_SPEC_JSON)

    def status_path(self, run_id: str) -> str:
        return os.path.join(self.run_dir(run_id), STATUS_JSON)

    def report_path(self, run_id: str) -> str:
        return os.path.join(self.run_dir(run_id), REPORT_JSON)

    def telemetry_path(self, run_id: str) -> str:
        return os.path.join(self.run_dir(run_id), TELEMETRY_JSONL)

    def cancel_path(self, run_id: str) -> str:
        return os.path.join(self.run_dir(run_id), CANCEL_MARKER)

    def exists(self, run_id: str) -> bool:
        return os.path.exists(self.status_path(run_id))

    # -- lifecycle ----------------------------------------------------------------
    def create(self, spec: RunSpec, run_id: Optional[str] = None) -> Dict[str, Any]:
        """Register a new run: write its spec and queued status; return status."""
        run_id = run_id or new_run_id()
        run_dir = self.run_dir(run_id)
        os.makedirs(run_dir, exist_ok=True)
        # The archived spec is resume-critical state: write it atomically so
        # a daemon killed mid-create never leaves a torn run_spec.json a
        # recovering successor would refuse to re-enqueue.
        atomic_write_json(self.spec_path(run_id), spec.to_dict())
        status = initial_status(run_id, spec, run_dir=run_dir)
        self.write_status(status)
        return status

    def write_status(self, status: Dict[str, Any]) -> None:
        """Atomically persist a status dict (readers never see a torn write)."""
        atomic_write_json(self.status_path(status["run_id"]), status)

    def load_status(self, run_id: str) -> Dict[str, Any]:
        path = self.status_path(run_id)
        if not os.path.exists(path):
            raise RunNotFound(run_id)
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def update_status(self, run_id: str, **changes: Any) -> Dict[str, Any]:
        status = self.load_status(run_id)
        status.update(changes)
        self.write_status(status)
        return status

    def load_spec(self, run_id: str) -> RunSpec:
        if not os.path.exists(self.spec_path(run_id)):
            raise RunNotFound(run_id)
        return RunSpec.from_file(self.spec_path(run_id))

    def list_statuses(self) -> List[Dict[str, Any]]:
        """Every registered run's status, oldest submission first."""
        statuses = []
        for name in sorted(os.listdir(self.root)):
            if os.path.exists(os.path.join(self.root, name, STATUS_JSON)):
                statuses.append(self.load_status(name))
        statuses.sort(key=lambda status: (status.get("created_at") or 0.0))
        return statuses

    # -- cancellation -------------------------------------------------------------
    def request_cancel(self, run_id: str) -> Dict[str, Any]:
        """Drop the cancel marker (visible to the executing process's token)."""
        if not self.exists(run_id):
            raise RunNotFound(run_id)
        with open(self.cancel_path(run_id), "w", encoding="utf-8") as handle:
            handle.write(f"cancel requested at {time.time()}\n")
        return self.update_status(run_id, cancel_requested=True)

    def clear_cancel(self, run_id: str) -> None:
        """Remove a stale cancel request (called before a resume)."""
        try:
            os.remove(self.cancel_path(run_id))
        except FileNotFoundError:
            pass

    # -- report -------------------------------------------------------------------
    def save_report(self, run_id: str, report: Dict[str, Any]) -> str:
        path = self.report_path(run_id)
        atomic_write_json(path, report)
        return path

    def load_report(self, run_id: str) -> Optional[Dict[str, Any]]:
        path = self.report_path(run_id)
        if not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
