"""Typed, replayable event streams for the run lifecycle API.

Both transports speak :class:`~repro.engine.events.EngineEvent`:

* :class:`EventLog` -- the in-process stream.  A bus subscriber appends
  events as the engine emits them; any number of readers replay the log from
  an index and optionally block for more (``follow=True``) until the run
  closes the log.
* :func:`tail_telemetry` -- the out-of-process stream.  Reads a run
  directory's ``telemetry.jsonl`` (written by
  :class:`~repro.engine.events.JsonlTelemetry`) back into ``EngineEvent``
  objects, optionally following the file as the run appends to it.

``EngineEvent.to_dict`` / ``from_dict`` being exact inverses is what makes
the two interchangeable: a consumer written against one schema works on
live subscriptions, HTTP event pages and offline telemetry files alike.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Iterator, List, Optional

from repro.engine.events import EngineEvent


class EventLog:
    """Thread-safe, replayable, append-only event stream of one run.

    Usable directly as an event-bus subscriber (``bus.subscribe(log)``).
    Readers never miss events: iteration always starts from an absolute
    index, so a consumer that subscribes late replays the history first and
    then follows live.
    """

    def __init__(self) -> None:
        self._events: List[EngineEvent] = []
        self._closed = False
        self._condition = threading.Condition()

    def __call__(self, event: EngineEvent) -> None:
        self.append(event)

    def __len__(self) -> int:
        with self._condition:
            return len(self._events)

    @property
    def closed(self) -> bool:
        with self._condition:
            return self._closed

    def append(self, event: EngineEvent) -> None:
        with self._condition:
            if self._closed:
                raise ValueError("cannot append to a closed event log")
            self._events.append(event)
            self._condition.notify_all()

    def close(self) -> None:
        """Mark the stream complete; followers drain and stop (idempotent)."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    def snapshot(self, since: int = 0) -> List[EngineEvent]:
        """The events from absolute index ``since`` onward, non-blocking."""
        with self._condition:
            return list(self._events[since:])

    def iter(self, since: int = 0, follow: bool = False) -> Iterator[EngineEvent]:
        """Replay from ``since``; with ``follow`` block for more until closed."""
        index = since
        while True:
            with self._condition:
                while follow and index >= len(self._events) and not self._closed:
                    # The timeout is a liveness guard only (close() notifies).
                    self._condition.wait(timeout=0.5)
                batch = list(self._events[index:])
                closed = self._closed
            for event in batch:
                yield event
            index += len(batch)
            if not follow or (closed and not batch):
                return


def tail_telemetry(
    path: str,
    since: int = 0,
    follow: bool = False,
    poll_interval: float = 0.2,
    timeout: Optional[float] = None,
) -> Iterator[EngineEvent]:
    """Yield the events of a ``telemetry.jsonl`` file, oldest first.

    Works on any run directory's telemetry stream -- service-managed or not.
    ``since`` skips that many events (an absolute index, matching
    :meth:`EventLog.iter`).  With ``follow=True`` the file is polled for
    growth until the run's event stream ends or ``timeout`` seconds pass;
    otherwise the current contents are drained once.  A resumed run appends
    a new segment after its predecessor's terminal event, so "ended" means
    the *latest* drained event is terminal -- a stale ``run-finished`` from
    a cancelled segment with live events behind it does not stop the tail.
    Partial trailing lines (a writer mid-append) are buffered until
    complete, and unparsable lines are skipped rather than ending the
    stream.
    """
    index = 0
    position = 0
    pending = ""
    last_was_terminal = False
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                handle.seek(position)
                chunk = handle.read()
                position = handle.tell()
            pending += chunk
            while "\n" in pending:
                line, pending = pending.split("\n", 1)
                line = line.strip()
                if not line:
                    continue
                try:
                    event = EngineEvent.from_dict(json.loads(line))
                except (ValueError, json.JSONDecodeError):
                    continue
                last_was_terminal = event.is_terminal
                if index >= since:
                    yield event
                index += 1
        if not follow or last_was_terminal:
            return
        if deadline is not None and time.monotonic() >= deadline:
            return
        time.sleep(poll_interval)
