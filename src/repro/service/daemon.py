"""The local run service daemon behind ``repro-search serve``.

A stdlib-only HTTP front (``http.server.ThreadingHTTPServer``) over a
registry-backed :class:`~repro.service.local.LocalExecutor` plus a
:class:`~repro.serving.server.ModelServer`: submissions are ``RunSpec``
JSON, runs queue on the executor's bounded worker-slot pool, promoted zoo
models answer batched predict requests, and every artifact lives in the
runs/zoo roots, so daemon restarts lose nothing.

Endpoints (JSON unless noted)::

    GET  /healthz                  liveness probe
    GET  /metrics                  Prometheus text exposition (text/plain)
    POST /runs                     submit a RunSpec JSON body -> {"run_id"}
    GET  /runs                     every run's status, oldest first
    GET  /runs/<id>                one run's status
    GET  /runs/<id>/report         RunReport.to_dict() (409 until finished)
    GET  /runs/<id>/events?since=N event page {"events", "next", "done"}
    POST /runs/<id>/cancel         cooperative cancel -> updated status
    POST /runs/<id>/resume         re-queue from the checkpoint -> {"run_id"}
    GET  /models                   zoo entries (+ live serving stats)
    POST /models/promote           {"run_id", "name"?, "episode"?} -> manifest
    POST /models/<name>/predict    {"inputs": [[...], ...]} -> {"predictions"}
    GET  /agents                   registered fleet agents + lease counts
    POST /agents/register          {"name"?} -> agent id + timing contract
    POST /agents/heartbeat         {"agent_id", "active_tasks"} -> {"ok"}
    POST /agents/lease             {"agent_id"} -> {"task": {...} | null}
    POST /agents/complete          {"agent_id", "task_id", "result"} -> {"accepted"}
    GET  /store/<key>              object bytes (octet-stream; 404 on miss)
    PUT  /store/<key>              store raw bytes under their content key
    HEAD /store/<key>              existence probe (200/404, no body)
    POST /store/has                {"keys": [...]} -> {"present": {key: bool}}
    GET  /store/refs/<name>        {"name", "key"} ref lookup (404 on miss)
    PUT  /store/refs/<name>        {"key": <content key>} -> {"ok": true}
    GET  /store/stats              the store's counters (hits, puts, evictions)

The ``/agents/*`` endpoints are the worker-fabric protocol (see
:mod:`repro.fleet`): task payloads and results travel base64-encoded inside
the JSON envelope.  The ``/store/*`` endpoints are the shared
content-addressed artifact store (see :mod:`repro.store`): engines pointed
at this daemon with ``--store-url`` share evaluation results through it, so
each unique ``(context, child, fidelity)`` trains once fleet-wide.

Errors are structured: ``{"error": {"type", "message"}}`` with 400 for
invalid specs/JSON, 404 for unknown runs/models/agents/endpoints, 408 for a
body read that timed out, 409 for a report requested before the run
finished, 411/413 for missing-length/oversized bodies (validated from the
headers *before* any body byte is read), 429 when a model's serving queue is
full and 503 once the daemon is draining (new submissions/resumes refused).
A connection-level timeout (``request_timeout``) drops stalled clients so
they cannot wedge a worker thread.
"""

from __future__ import annotations

import base64
import json
import os
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.api.spec import RunSpec
from repro.fleet.pool import install_supervisor, installed_supervisor
from repro.fleet.supervisor import FleetConfig, FleetSupervisor, UnknownAgent
from repro.obs import metrics as obs_metrics
from repro.service import registry as reg
from repro.service.errors import RunNotFound, RunNotReady, ServiceDraining
from repro.service.local import LocalExecutor
from repro.serving.batcher import QueueFull
from repro.serving.registry import DEFAULT_ZOO_ROOT, ModelNotFound
from repro.serving.server import ModelServer
from repro.store import KEY_PATTERN, LocalStore, StoreError

DEFAULT_STORE_DIR = "_store"

DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024
DEFAULT_REQUEST_TIMEOUT = 30.0


class _RequestHandler(BaseHTTPRequestHandler):
    server_version = "repro-run-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def executor(self) -> LocalExecutor:
        return self.server.executor  # type: ignore[attr-defined]

    @property
    def model_server(self) -> ModelServer:
        return self.server.model_server  # type: ignore[attr-defined]

    @property
    def supervisor(self) -> FleetSupervisor:
        return self.server.supervisor  # type: ignore[attr-defined]

    @property
    def store(self) -> LocalStore:
        return self.server.store  # type: ignore[attr-defined]

    def setup(self) -> None:
        # Connection-level timeout: a client that stalls mid-request (or
        # never sends one) gets dropped instead of pinning a worker thread.
        self.timeout = getattr(self.server, "request_timeout", None)
        super().setup()

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "quiet", True):
            return
        super().log_message(format, *args)

    # -- response helpers ----------------------------------------------------------
    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        if self.command == "HEAD":
            # A HEAD response must not carry a body (it would desynchronise
            # a keep-alive connection); status + headers say everything.
            body = b""
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_bytes(self, status: int, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if self.command != "HEAD":
            self.wfile.write(body)

    def _send_error_json(self, status: int, kind: str, message: str) -> None:
        self._send_json(status, {"error": {"type": kind, "message": message}})

    def _send_text(self, status: int, body: str, content_type: str) -> None:
        encoded = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        self.end_headers()
        self.wfile.write(encoded)

    def _read_json_body(self, required: bool = False) -> Any:
        raw = self._read_body(required=required)
        if not raw:
            return {}
        try:
            return json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            raise _BadRequest("invalid-json", f"request body is not JSON: {error}")

    def _read_body(self, required: bool = False) -> bytes:
        """Validate the body from its headers *before* reading a byte.

        Missing ``Content-Length`` on a request that carries (or must carry)
        a body is 411; a declared length beyond the server's limit is 413 --
        both answered without draining the wire, so an oversized upload is
        rejected at the headers instead of buffered.  A client that stalls
        mid-body hits the connection timeout and gets 408.
        """
        raw_length = self.headers.get("Content-Length")
        if raw_length is None:
            if self.headers.get("Transfer-Encoding") or required:
                raise _HttpError(
                    411,
                    "length-required",
                    "request must declare Content-Length (chunked bodies are "
                    "not accepted)",
                    close=True,
                )
            return b""
        try:
            length = int(raw_length)
        except ValueError:
            raise _HttpError(
                400, "invalid-length", f"Content-Length is not an integer: "
                f"{raw_length!r}", close=True
            )
        if length < 0:
            raise _HttpError(
                400, "invalid-length", "Content-Length must be non-negative",
                close=True,
            )
        limit = getattr(self.server, "max_body_bytes", DEFAULT_MAX_BODY_BYTES)
        if length > limit:
            raise _HttpError(
                413,
                "payload-too-large",
                f"request body of {length} bytes exceeds the server limit of "
                f"{limit} bytes",
                close=True,
            )
        try:
            raw = self.rfile.read(length) if length else b""
        except TimeoutError:
            raise _HttpError(
                408,
                "request-timeout",
                "timed out reading the request body",
                close=True,
            )
        if len(raw) < length:
            raise _HttpError(
                400, "truncated-body",
                f"declared {length} body bytes, received {len(raw)}", close=True
            )
        if not raw and required:
            raise _HttpError(411, "length-required", "request body required")
        return raw

    def _route(self) -> Tuple[str, Optional[str], Optional[str], Dict[str, str]]:
        """Split the path into (root, run_id, action, query)."""
        split = urllib.parse.urlsplit(self.path)
        query = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(split.query).items()
        }
        parts = [part for part in split.path.split("/") if part]
        root = parts[0] if parts else ""
        run_id = urllib.parse.unquote(parts[1]) if len(parts) > 1 else None
        action = parts[2] if len(parts) > 2 else None
        if len(parts) > 3:
            raise _NotFoundPath()
        return root, run_id, action, query

    # -- request dispatch ----------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._dispatch("PUT")

    def do_HEAD(self) -> None:  # noqa: N802
        self._dispatch("HEAD")

    def _dispatch(self, method: str) -> None:
        try:
            root, run_id, action, query = self._route()
            handler = self._resolve_handler(method, root, run_id, action)
            handler(run_id, query)
        except _HttpError as error:
            if error.close:
                self.close_connection = True
            self._send_error_json(error.status, error.kind, error.message)
        except _NotFoundPath:
            self._send_error_json(
                404, "unknown-endpoint", f"no such endpoint: {method} {self.path}"
            )
        except RunNotFound as error:
            self._send_error_json(404, "unknown-run", str(error))
        except ModelNotFound as error:
            self._send_error_json(404, "unknown-model", str(error))
        except UnknownAgent as error:
            self._send_error_json(404, "unknown-agent", str(error))
        except ServiceDraining as error:
            self._send_error_json(503, "draining", str(error))
        except RunNotReady as error:
            self._send_error_json(409, "run-not-ready", str(error))
        except QueueFull as error:
            self._send_error_json(429, "backpressure", str(error))
        except StoreError as error:
            self._send_error_json(400, "invalid-store-request", str(error))
        except ValueError as error:
            self._send_error_json(400, "invalid-spec", str(error))
        except Exception as error:  # no stack traces over the wire
            self._send_error_json(500, "internal-error", f"{type(error).__name__}: {error}")

    def _resolve_handler(
        self, method: str, root: str, run_id: Optional[str], action: Optional[str]
    ):
        if method == "GET" and root == "healthz" and run_id is None:
            return self._get_health
        if method == "GET" and root == "metrics" and run_id is None:
            return self._get_metrics
        if root == "models":
            if method == "GET" and run_id is None:
                return self._get_models
            if method == "POST" and run_id == "promote" and action is None:
                return self._post_promote
            if method == "POST" and run_id is not None and action == "predict":
                return self._post_predict
            raise _NotFoundPath()
        if root == "agents":
            if method == "GET" and run_id is None:
                return self._get_agents
            ops = ("register", "heartbeat", "lease", "complete")
            if method == "POST" and run_id in ops and action is None:
                return getattr(self, f"_post_agent_{run_id}")
            raise _NotFoundPath()
        if root == "store":
            # Object keys are 64-hex (KEY_PATTERN), so they can never
            # collide with the "stats"/"refs"/"has" path literals.
            if method == "GET" and run_id == "stats" and action is None:
                return self._get_store_stats
            if run_id == "refs" and action is not None:
                name = urllib.parse.unquote(action)
                if method == "GET":
                    return lambda _id, query: self._get_store_ref(name, query)
                if method == "PUT":
                    return lambda _id, query: self._put_store_ref(name, query)
            if method == "POST" and run_id == "has" and action is None:
                return self._post_store_has
            if run_id is not None and action is None:
                if method == "GET":
                    return self._get_store_object
                if method == "HEAD":
                    return self._head_store_object
                if method == "PUT":
                    return self._put_store_object
            raise _NotFoundPath()
        if root != "runs":
            raise _NotFoundPath()
        if method == "GET":
            if run_id is None:
                return self._get_runs
            if action is None:
                return self._get_status
            if action == "report":
                return self._get_report
            if action == "events":
                return self._get_events
        if method == "POST":
            if run_id is None and action is None:
                return self._post_submit
            if action == "cancel":
                return self._post_cancel
            if action == "resume":
                return self._post_resume
        raise _NotFoundPath()

    # -- endpoint implementations ---------------------------------------------------
    def _get_health(self, run_id: Optional[str], query: Dict[str, str]) -> None:
        self._send_json(200, {"ok": True, "runs_root": self.executor.registry.root})

    def _get_metrics(self, run_id: Optional[str], query: Dict[str, str]) -> None:
        """Prometheus text exposition of the process-global registry.

        Engines mirror their per-run registries into the global one, so this
        is the fleet view: every run this daemon process executed so far,
        the serving metric families, plus the executor's scrape-time gauges
        (slots, queue, runs by state).
        """
        self._send_text(
            200,
            obs_metrics.get_registry().render_prometheus(),
            "text/plain; version=0.0.4; charset=utf-8",
        )

    def _post_submit(self, run_id: Optional[str], query: Dict[str, str]) -> None:
        payload = self._read_json_body(required=True)
        spec = RunSpec.from_dict(payload)  # ValueError -> structured 400
        submitted = self.executor.submit(spec)
        self._send_json(
            201, {"run_id": submitted, "status": self.executor.status(submitted)}
        )

    def _get_runs(self, run_id: Optional[str], query: Dict[str, str]) -> None:
        self._send_json(200, {"runs": self.executor.list_runs()})

    def _get_status(self, run_id: Optional[str], query: Dict[str, str]) -> None:
        self._send_json(200, self.executor.status(run_id))

    def _get_report(self, run_id: Optional[str], query: Dict[str, str]) -> None:
        self._send_json(200, self.executor.report(run_id))

    def _get_events(self, run_id: Optional[str], query: Dict[str, str]) -> None:
        try:
            since = int(query.get("since", "0"))
        except ValueError:
            raise _BadRequest("invalid-query", "'since' must be an integer")
        events = list(self.executor.events(run_id, since=since, follow=False))
        state = self.executor.status(run_id)["state"]
        self._send_json(
            200,
            {
                "events": [event.to_dict() for event in events],
                "next": since + len(events),
                "done": state in reg.TERMINAL_STATES,
            },
        )

    def _post_cancel(self, run_id: Optional[str], query: Dict[str, str]) -> None:
        self._read_json_body()  # drain (and validate) any body
        self._send_json(200, self.executor.cancel(run_id))

    def _post_resume(self, run_id: Optional[str], query: Dict[str, str]) -> None:
        self._read_json_body()
        resumed = self.executor.resume(run_id)
        self._send_json(
            200, {"run_id": resumed, "status": self.executor.status(resumed)}
        )

    # -- serving endpoints ----------------------------------------------------------
    def _get_models(self, run_id: Optional[str], query: Dict[str, str]) -> None:
        self._send_json(200, {"models": self.model_server.models()})

    def _post_promote(self, run_id: Optional[str], query: Dict[str, str]) -> None:
        payload = self._read_json_body(required=True)
        if not isinstance(payload, dict) or "run_id" not in payload:
            raise _BadRequest(
                "invalid-promotion", 'body must be {"run_id": ..., "name"?, '
                '"episode"?}'
            )
        episode = payload.get("episode")
        entry = self.model_server.zoo.promote_run(
            self.executor.registry,
            str(payload["run_id"]),
            name=payload.get("name"),
            episode=None if episode is None else int(episode),
        )
        # A re-promotion may have moved the name's `latest` pointer.
        self.model_server.invalidate(entry.name)
        self._send_json(201, {"model": entry.manifest})

    def _post_predict(self, run_id: Optional[str], query: Dict[str, str]) -> None:
        payload = self._read_json_body(required=True)
        if not isinstance(payload, dict) or "inputs" not in payload:
            raise _BadRequest(
                "invalid-inputs", 'body must be {"inputs": [[...], ...]}'
            )
        try:
            inputs = np.asarray(payload["inputs"], dtype=np.float64)
        except (TypeError, ValueError) as error:
            raise _BadRequest("invalid-inputs", f"inputs are not numeric: {error}")
        predictions = self.model_server.predict(run_id, inputs)
        self._send_json(
            200,
            {
                "model": run_id,
                "count": int(predictions.shape[0]),
                "predictions": [int(value) for value in predictions],
            },
        )


    # -- store endpoints (the shared artifact store; see repro.store) ----------------
    def _get_store_object(self, key: Optional[str], query: Dict[str, str]) -> None:
        data = self.store.get(self._store_key(key))
        if data is None:
            raise _HttpError(404, "unknown-object", f"no object {key}")
        self._send_bytes(200, data)

    def _head_store_object(self, key: Optional[str], query: Dict[str, str]) -> None:
        if not self.store.has(self._store_key(key)):
            raise _HttpError(404, "unknown-object", f"no object {key}")
        self._send_bytes(200, b"")

    def _put_store_object(self, key: Optional[str], query: Dict[str, str]) -> None:
        data = self._read_body(required=True)
        # put_object verifies sha256(body) == key; a mismatch raises
        # StoreCorruptWrite -> structured 400, nothing persisted.
        self.store.put_object(self._store_key(key), data)
        self._send_json(201, {"key": key, "size": len(data)})

    def _post_store_has(self, run_id: Optional[str], query: Dict[str, str]) -> None:
        payload = self._read_json_body(required=True)
        if not isinstance(payload, dict) or not isinstance(
            payload.get("keys"), list
        ):
            raise _BadRequest("invalid-store-request", 'body must be {"keys": [...]}')
        keys = [self._store_key(str(key)) for key in payload["keys"]]
        self._send_json(200, {"present": self.store.has_many(keys)})

    def _get_store_ref(self, name: str, query: Dict[str, str]) -> None:
        key = self.store.get_ref(self._store_key(name))
        if key is None:
            raise _HttpError(404, "unknown-ref", f"no ref {name}")
        self._send_json(200, {"name": name, "key": key})

    def _put_store_ref(self, name: str, query: Dict[str, str]) -> None:
        payload = self._read_json_body(required=True)
        if not isinstance(payload, dict) or not isinstance(payload.get("key"), str):
            raise _BadRequest(
                "invalid-store-request", 'body must be {"key": <content key>}'
            )
        self.store.set_ref(self._store_key(name), self._store_key(payload["key"]))
        self._send_json(200, {"ok": True, "name": name})

    def _get_store_stats(self, run_id: Optional[str], query: Dict[str, str]) -> None:
        self._send_json(200, self.store.stats())

    @staticmethod
    def _store_key(key: Optional[str]) -> str:
        if key is None or not KEY_PATTERN.match(key):
            raise _BadRequest(
                "invalid-store-key",
                f"store keys are 64 lowercase hex characters, got {key!r}",
            )
        return key

    # -- fleet endpoints (the worker-fabric protocol; see repro.fleet) ---------------
    def _get_agents(self, run_id: Optional[str], query: Dict[str, str]) -> None:
        supervisor = self.supervisor
        self._send_json(
            200,
            {
                "agents": supervisor.agents_status(),
                "draining": supervisor.draining,
                "reassignments": supervisor.reassignments,
            },
        )

    def _post_agent_register(
        self, run_id: Optional[str], query: Dict[str, str]
    ) -> None:
        payload = self._read_json_body()
        name = payload.get("name") if isinstance(payload, dict) else None
        info = self.supervisor.register_agent(None if name is None else str(name))
        self._send_json(201, info)

    def _post_agent_heartbeat(
        self, run_id: Optional[str], query: Dict[str, str]
    ) -> None:
        payload = self._read_json_body(required=True)
        agent_id, active = self._agent_fields(payload)
        self._send_json(200, self.supervisor.heartbeat(agent_id, active))

    def _post_agent_lease(
        self, run_id: Optional[str], query: Dict[str, str]
    ) -> None:
        payload = self._read_json_body(required=True)
        agent_id, _active = self._agent_fields(payload)
        grant = self.supervisor.lease(agent_id)
        if grant is not None:
            grant = dict(grant)
            grant["payload"] = base64.b64encode(grant["payload"]).decode("ascii")
        self._send_json(
            200, {"task": grant, "draining": self.supervisor.draining}
        )

    def _post_agent_complete(
        self, run_id: Optional[str], query: Dict[str, str]
    ) -> None:
        payload = self._read_json_body(required=True)
        agent_id, _active = self._agent_fields(payload)
        task_id = payload.get("task_id")
        encoded = payload.get("result")
        if not isinstance(task_id, str) or not isinstance(encoded, str):
            raise _BadRequest(
                "invalid-completion",
                'body must be {"agent_id", "task_id", "result": <base64>}',
            )
        try:
            result = base64.b64decode(encoded, validate=True)
        except (ValueError, TypeError) as error:
            raise _BadRequest("invalid-completion", f"result is not base64: {error}")
        accepted = self.supervisor.complete(agent_id, task_id, result)
        self._send_json(200, {"accepted": accepted})

    @staticmethod
    def _agent_fields(payload: Any) -> Tuple[str, List[str]]:
        if not isinstance(payload, dict) or not isinstance(
            payload.get("agent_id"), str
        ):
            raise _BadRequest(
                "invalid-agent-request", 'body must carry an "agent_id" string'
            )
        active = payload.get("active_tasks") or []
        if not isinstance(active, list):
            raise _BadRequest(
                "invalid-agent-request", '"active_tasks" must be a list of task ids'
            )
        return payload["agent_id"], [str(task_id) for task_id in active]


class _HttpError(Exception):
    """A structured HTTP error with an explicit status code."""

    def __init__(self, status: int, kind: str, message: str, close: bool = False):
        super().__init__(message)
        self.status = status
        self.kind = kind
        self.message = message
        self.close = close


class _BadRequest(_HttpError):
    def __init__(self, kind: str, message: str):
        super().__init__(400, kind, message)


class _NotFoundPath(Exception):
    pass


class RunService:
    """The daemon: a threading HTTP server over a registry-backed executor."""

    def __init__(
        self,
        runs_root: str,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = 1,
        quiet: bool = True,
        zoo_root: str = DEFAULT_ZOO_ROOT,
        max_batch_size: int = 32,
        flush_ms: float = 5.0,
        max_queue: int = 256,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
        fleet: Optional[FleetConfig] = None,
        store_root: Optional[str] = None,
        store_max_bytes: Optional[int] = None,
    ):
        # The daemon owns its runs root: re-enqueue runs a previous daemon
        # left queued and fail the ones it left mid-flight (resumable).
        self.executor = LocalExecutor(
            runs_root=runs_root, max_workers=max_workers, recover=True
        )
        # The fleet supervisor is installed process-wide so engine-created
        # pools (EngineConfig(backend="fleet")) running inside this daemon's
        # worker threads find it by name.
        self.supervisor = FleetSupervisor(fleet or FleetConfig())
        install_supervisor(self.supervisor)
        self.model_server = ModelServer(
            zoo_root=zoo_root,
            max_batch_size=max_batch_size,
            max_delay_ms=flush_ms,
            max_queue=max_queue,
        )
        # The shared artifact store lives under the runs root by default, so
        # a restarted daemon serves every object its predecessor accepted.
        self.store = LocalStore(
            store_root or os.path.join(runs_root, DEFAULT_STORE_DIR),
            max_bytes=store_max_bytes,
        )
        self.store.bind_metrics(obs_metrics.get_registry())
        self.server = ThreadingHTTPServer((host, port), _RequestHandler)
        self.server.daemon_threads = True
        self.server.executor = self.executor  # type: ignore[attr-defined]
        self.server.model_server = self.model_server  # type: ignore[attr-defined]
        self.server.supervisor = self.supervisor  # type: ignore[attr-defined]
        self.server.store = self.store  # type: ignore[attr-defined]
        self.server.quiet = quiet  # type: ignore[attr-defined]
        self.server.max_body_bytes = max_body_bytes  # type: ignore[attr-defined]
        self.server.request_timeout = request_timeout  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self.server.server_address[0]

    @property
    def port(self) -> int:
        return self.server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "RunService":
        """Serve in a background thread (for embedding and tests)."""
        self._thread = threading.Thread(
            target=self.server.serve_forever, daemon=True, name="repro-run-service"
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        self.server.serve_forever()

    def drain(self, timeout: Optional[float] = 30.0) -> List[str]:
        """Graceful wind-down (the SIGTERM path); HTTP keeps answering.

        The fleet supervisor stops granting leases (agents see ``draining``
        and exit after their current task), the executor refuses new
        submissions with 503 and checkpoints everything in flight, and
        status/report/events endpoints stay up throughout so clients can
        observe the drain.  Follow with :meth:`shutdown` to stop serving.
        Returns the ids of the runs that were checkpointed mid-flight.
        """
        self.supervisor.drain()
        drained = self.executor.drain(timeout=timeout)
        # Idle agents only learn of the drain from a heartbeat response;
        # linger one heartbeat generation so every live agent hears it
        # before shutdown() takes the HTTP endpoints away.
        if self.supervisor.alive_agents() > 0:
            time.sleep(
                min(2.5 * self.supervisor.config.heartbeat_interval, 10.0)
            )
        return drained

    def shutdown(self) -> None:
        """Stop accepting requests and wind down the worker pool."""
        self.server.shutdown()
        self.server.server_close()
        self.model_server.close()
        self.executor.shutdown(wait=False)
        if installed_supervisor() is self.supervisor:
            install_supervisor(None)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
