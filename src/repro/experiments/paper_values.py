"""The paper's reported numbers, used as reference columns in every harness.

All values are transcribed from the tables and figures of "The Larger The
Fairer?" (DAC 2022).  They are *targets for shape comparison* -- the
reproduction's absolute numbers come from a synthetic dataset and an analytic
latency model, so only orderings and rough ratios are expected to match (see
EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict

# Table 3 -- parameters / accuracy / per-group accuracy / unfairness / reward,
# storage (MB), latency on Raspberry Pi and Odroid XU-4 (ms).
TABLE3: Dict[str, Dict[str, float]] = {
    "MobileNetV2": {
        "group": 1, "params": 2_230_277, "accuracy": 0.8105, "light": 0.8127,
        "dark": 0.5802, "unfairness": 0.2325, "reward": 0.58, "storage_mb": 8.51,
        "latency_pi_ms": 1939.40, "latency_odroid_ms": 4264.55, "meets_ac": True,
    },
    "ProxylessNAS(M)": {
        "group": 1, "params": 2_805_917, "accuracy": 0.8127, "light": 0.8156,
        "dark": 0.5062, "unfairness": 0.3094, "reward": 0.50, "storage_mb": 10.70,
        "latency_pi_ms": 5241.51, "latency_odroid_ms": 8784.53, "meets_ac": True,
    },
    "MnasNet 0.5": {
        "group": 1, "params": 943_917, "accuracy": 0.7812, "light": 0.7854,
        "dark": 0.3333, "unfairness": 0.4521, "reward": -1.00, "storage_mb": 3.60,
        "latency_pi_ms": 714.19, "latency_odroid_ms": 2312.05, "meets_ac": False,
    },
    "MobileNetV3(S)": {
        "group": 1, "params": 1_522_981, "accuracy": 0.8038, "light": 0.8068,
        "dark": 0.4815, "unfairness": 0.3253, "reward": -1.00, "storage_mb": 5.81,
        "latency_pi_ms": 658.84, "latency_odroid_ms": 1954.14, "meets_ac": False,
    },
    "MnasNet 1.0": {
        "group": 1, "params": 3_108_717, "accuracy": 0.8071, "light": 0.8098,
        "dark": 0.5185, "unfairness": 0.2913, "reward": -1.00, "storage_mb": 11.86,
        "latency_pi_ms": 3855.72, "latency_odroid_ms": 7033.29, "meets_ac": False,
    },
    "FaHaNa-Small": {
        "group": 1, "params": 422_341, "accuracy": 0.8128, "light": 0.8146,
        "dark": 0.6173, "unfairness": 0.1973, "reward": 0.62, "storage_mb": 1.61,
        "latency_pi_ms": 337.30, "latency_odroid_ms": 736.22, "meets_ac": True,
    },
    "ResNet-50": {
        "group": 2, "params": 23_518_277, "accuracy": 0.8381, "light": 0.8398,
        "dark": 0.6543, "unfairness": 0.1855, "reward": 0.65, "storage_mb": 89.72,
        "latency_pi_ms": 1063.61, "latency_odroid_ms": 5750.42, "meets_ac": True,
    },
    "ResNet-18": {
        "group": 2, "params": 11_179_077, "accuracy": 0.8308, "light": 0.8328,
        "dark": 0.6173, "unfairness": 0.2155, "reward": 0.62, "storage_mb": 42.64,
        "latency_pi_ms": 425.90, "latency_odroid_ms": 1373.16, "meets_ac": True,
    },
    "ResNet-34": {
        "group": 2, "params": 21_287_237, "accuracy": 0.8301, "light": 0.8323,
        "dark": 0.5926, "unfairness": 0.2397, "reward": 0.59, "storage_mb": 81.20,
        "latency_pi_ms": 621.87, "latency_odroid_ms": 2829.22, "meets_ac": True,
    },
    "ProxylessNAS(G)": {
        "group": 2, "params": 5_399_493, "accuracy": 0.8321, "light": 0.8346,
        "dark": 0.5679, "unfairness": 0.2667, "reward": 0.57, "storage_mb": 20.60,
        "latency_pi_ms": 3714.44, "latency_odroid_ms": 9426.17, "meets_ac": True,
    },
    "MobileNetV3(L)": {
        "group": 2, "params": 4_208_437, "accuracy": 0.7958, "light": 0.8000,
        "dark": 0.3457, "unfairness": 0.4543, "reward": -1.00, "storage_mb": 16.05,
        "latency_pi_ms": 2668.00, "latency_odroid_ms": 4824.40, "meets_ac": False,
    },
    "FaHaNa-Fair": {
        "group": 2, "params": 5_502_469, "accuracy": 0.8406, "light": 0.8422,
        "dark": 0.6667, "unfairness": 0.1755, "reward": 0.67, "storage_mb": 20.99,
        "latency_pi_ms": 606.80, "latency_odroid_ms": 1833.76, "meets_ac": True,
    },
}

# Table 1 -- models under a 30 MB storage budget on the Raspberry Pi with
# TC = 1500 ms.
TABLE1: Dict[str, Dict[str, float]] = {
    "SqueezeNet 1.0": {
        "latency_pi_ms": 122.92, "storage_mb": 2.77, "accuracy": 0.1565,
        "unfairness": 0.2159, "meets_spec": True,
    },
    "MobileNetV3(S)": {
        "latency_pi_ms": 658.84, "storage_mb": 5.81, "accuracy": 0.8038,
        "unfairness": 0.3253, "meets_spec": True,
    },
    "MnasNet 0.5": {
        "latency_pi_ms": 714.19, "storage_mb": 3.60, "accuracy": 0.7812,
        "unfairness": 0.4521, "meets_spec": True,
    },
    "MobileNetV2": {
        "latency_pi_ms": 1939.40, "storage_mb": 8.51, "accuracy": 0.8105,
        "unfairness": 0.2325, "meets_spec": False,
    },
    "ProxylessNAS(G)": {
        "latency_pi_ms": 3714.44, "storage_mb": 20.60, "accuracy": 0.8321,
        "unfairness": 0.2667, "meets_spec": False,
    },
    "MnasNet 1.0": {
        "latency_pi_ms": 3855.72, "storage_mb": 11.86, "accuracy": 0.8071,
        "unfairness": 0.2913, "meets_spec": False,
    },
    "ProxylessNAS(M)": {
        "latency_pi_ms": 5241.51, "storage_mb": 10.70, "accuracy": 0.8127,
        "unfairness": 0.3094, "meets_spec": False,
    },
}

# Figure 2 -- unfairness across architectures (subset also appears in Table 3).
FIGURE2_UNFAIRNESS: Dict[str, float] = {
    "MnasNet 0.5": 0.4521,
    "ProxylessNAS(M)": 0.3094,
    "MobileNetV3(S)": 0.3253,
    "ProxylessNAS(G)": 0.2667,
    "MnasNet 1.0": 0.2913,
    "MobileNetV2": 0.2325,
    "ResNet-18": 0.1820,
}

# Figure 1(b) -- unfairness of MnasNet 0.5 trained with 5x minority data is
# still higher than ResNet-18 without balancing.
FIGURE1B: Dict[str, float] = {
    "MnasNet 0.5 @5x minority": 0.2280,
    "ResNet-18": 0.1820,
}

# Table 2 -- search space, valid ratio, search time.
TABLE2: Dict[str, Dict[str, float]] = {
    "MONAS": {
        "space_size": 1e19,
        "valid_ratio_tight": 0.2750, "hours_tight": 104.75, "speedup_tight": 1.0,
        "valid_ratio_relaxed": 0.3333, "hours_relaxed": 177.25, "speedup_relaxed": 1.0,
    },
    "FaHaNa": {
        "space_size": 1e9,
        "valid_ratio_tight": 0.7105, "hours_tight": 57.17, "speedup_tight": 1.83,
        "valid_ratio_relaxed": 0.9523, "hours_relaxed": 66.33, "speedup_relaxed": 2.67,
    },
}

# Table 4 -- effect of 5x minority data balancing.
TABLE4: Dict[str, Dict[str, float]] = {
    "MobileNetV2": {
        "accuracy": 0.8105, "unfairness": 0.2325,
        "accuracy_balanced": 0.8214, "unfairness_balanced": 0.1528,
    },
    "ProxylessNAS(M)": {
        "accuracy": 0.8127, "unfairness": 0.3094,
        "accuracy_balanced": 0.8153, "unfairness_balanced": 0.1467,
    },
    "MnasNet 0.5": {
        "accuracy": 0.7812, "unfairness": 0.4521,
        "accuracy_balanced": 0.7882, "unfairness_balanced": 0.1824,
    },
    "MobileNetV3(S)": {
        "accuracy": 0.8038, "unfairness": 0.3253,
        "accuracy_balanced": 0.8055, "unfairness_balanced": 0.1923,
    },
    "MnasNet 1.0": {
        "accuracy": 0.8071, "unfairness": 0.2913,
        "accuracy_balanced": 0.8020, "unfairness_balanced": 0.1585,
    },
    "FaHaNa-Small": {
        "accuracy": 0.8128, "unfairness": 0.1973,
        "accuracy_balanced": 0.8202, "unfairness_balanced": 0.1365,
    },
}

# Headline claims of the abstract / Section 4.
HEADLINE: Dict[str, float] = {
    "fahana_small_vs_mobilenetv2_storage_reduction": 5.28,
    "fahana_small_vs_mobilenetv2_pi_speedup": 5.75,
    "fahana_small_vs_mobilenetv2_odroid_speedup": 5.79,
    "fahana_small_vs_mobilenetv2_fairness_improvement": 0.1514,
    "fahana_vs_mnasnet_unfairness_reduction_from": 0.4521,
    "fahana_vs_mnasnet_unfairness_reduction_to": 0.1973,
    "freezing_search_speedup_relaxed": 2.67,
    "freezing_space_reduction_from": 1e19,
    "freezing_space_reduction_to": 1e9,
}
