"""Figure 5: FaHaNa-Nets push the Pareto frontier forward.

Runs the FaHaNa search and compares the discovered networks against the
existing zoo in two projections: (a) best reward versus model size and
(b) unfairness versus accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.api.run import run as run_spec
from repro.core.fahana import FaHaNaResult
from repro.core.results import EpisodeRecord
from repro.experiments.common import (
    ArchitectureEvaluation,
    evaluate_architecture,
    prepare_data,
    search_spec,
)
from repro.experiments.presets import ScalePreset, get_preset
from repro.utils.pareto import pareto_frontier
from repro.utils.tabulate import format_table

COMPARISON_NETWORKS: List[str] = [
    "MnasNet 0.5",
    "MobileNetV3(S)",
    "MobileNetV2",
    "ProxylessNAS(M)",
    "MnasNet 1.0",
]


@dataclass
class Figure5Result:
    """Search outcome plus the existing-network reference points."""

    search: FaHaNaResult
    existing: List[ArchitectureEvaluation]
    preset_name: str

    def fahana_points(self) -> List[Tuple[float, float, float]]:
        """(params, reward, unfairness) of every trained, valid FaHaNa child."""
        return [
            (float(r.num_parameters), r.reward, r.unfairness)
            for r in self.search.history.valid_records()
            if r.trained
        ]

    def pareto_records(self) -> List[EpisodeRecord]:
        return self.search.history.pareto_reward_size()


def run(
    preset: ScalePreset = None,
    seed: int = 0,
    episodes: Optional[int] = None,
    timing_constraint_ms: float = 1500.0,
) -> Figure5Result:
    """Reproduce Figure 5 at the chosen scale."""
    preset = preset or get_preset("ci")
    data = prepare_data(preset, seed)
    search = run_spec(
        search_spec(
            preset,
            "fahana",
            episodes=episodes,
            seed=seed,
            timing_constraint_ms=timing_constraint_ms,
        ),
        train_dataset=data.splits.train,
        validation_dataset=data.splits.validation,
    ).result
    existing = [
        evaluate_architecture(name, preset, seed) for name in COMPARISON_NETWORKS
    ]
    return Figure5Result(search=search, existing=existing, preset_name=preset.name)


def render(result: Figure5Result) -> str:
    """The two scatter series of Figure 5 as tables."""
    rows_a = []
    for record in sorted(result.pareto_records(), key=lambda r: r.num_parameters):
        rows_a.append(
            [
                f"FaHaNa ep{record.episode}",
                f"{record.num_parameters / 1e6:.2f}M",
                f"{record.reward:.4f}",
                f"{record.unfairness:.4f}",
            ]
        )
    for evaluation in result.existing:
        rows_a.append(
            [
                evaluation.name,
                f"{evaluation.params / 1e6:.2f}M",
                f"{evaluation.reward:.4f}",
                f"{evaluation.unfairness:.4f}",
            ]
        )
    table_a = format_table(["network", "size", "reward", "unfairness"], rows_a)

    rows_b = []
    for record in result.search.history.pareto_accuracy_fairness():
        rows_b.append(
            ["FaHaNa", f"{record.accuracy:.2%}", f"{record.unfairness:.4f}"]
        )
    for evaluation in result.existing:
        rows_b.append(
            [evaluation.name, f"{evaluation.accuracy:.2%}", f"{evaluation.unfairness:.4f}"]
        )
    table_b = format_table(["network", "accuracy", "unfairness"], rows_b)
    return (
        "Figure 5(a): reward vs model size (Pareto points + existing networks)\n"
        + table_a
        + "\n\nFigure 5(b): unfairness vs accuracy\n"
        + table_b
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
