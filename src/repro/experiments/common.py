"""Shared plumbing for the experiment harnesses.

``evaluate_architecture`` trains one architecture at the chosen scale preset
and measures everything the paper's tables report (accuracy, per-group
accuracy, unfairness, reward, parameters, storage, latency on both devices).
Results are cached per (architecture, preset, seed, dataset variant) so that
harnesses sharing networks -- Table 1, Table 3, Figures 1/2/6 -- train each
network only once per session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.api.spec import DatasetSpec, DesignSpecConfig, RunSpec, SearchParams
from repro.core.reward import RewardConfig, compute_reward
from repro.data.balancing import balance_minority
from repro.data.dataset import DatasetSplits, GroupedDataset, stratified_split
from repro.data.dermatology import DermatologyConfig, DermatologyGenerator
from repro.data.transforms import normalize_images
from repro.experiments.presets import ScalePreset
from repro.fairness.report import evaluate_fairness
from repro.hardware.device import ODROID_XU4, RASPBERRY_PI_4
from repro.hardware.latency import estimate_latency_ms
from repro.nn.trainer import Trainer
from repro.zoo.descriptors import ArchitectureDescriptor
from repro.zoo.registry import get_architecture


@dataclass
class ArchitectureEvaluation:
    """Everything measured about one fully-trained architecture."""

    name: str
    params: int
    storage_mb: float
    latency_pi_ms: float
    latency_odroid_ms: float
    accuracy: float
    group_accuracy: Dict[str, float]
    unfairness: float
    reward: float
    meets_timing: bool
    meets_accuracy: bool
    train_accuracy: float

    @property
    def light_accuracy(self) -> float:
        return self.group_accuracy.get("light", float("nan"))

    @property
    def dark_accuracy(self) -> float:
        return self.group_accuracy.get("dark", float("nan"))


@dataclass
class PreparedData:
    """Normalised train/validation/test splits plus the generator that made them."""

    splits: DatasetSplits
    generator: DermatologyGenerator
    mean: np.ndarray
    std: np.ndarray


_DATA_CACHE: Dict[Tuple, PreparedData] = {}
_EVAL_CACHE: Dict[Tuple, ArchitectureEvaluation] = {}


def clear_caches() -> None:
    """Drop all cached datasets and evaluations (mainly for tests)."""
    _DATA_CACHE.clear()
    _EVAL_CACHE.clear()


def prepare_data(
    preset: ScalePreset,
    seed: int = 0,
    minority_multiplier: float = 1.0,
    balanced: bool = False,
) -> PreparedData:
    """Generate, split and normalise the dermatology dataset for a preset."""
    key = (preset.name, seed, round(minority_multiplier, 4), balanced)
    if key in _DATA_CACHE:
        return _DATA_CACHE[key]
    config = preset.dermatology_config(minority_multiplier)
    generator = DermatologyGenerator(config)
    dataset = generator.generate()
    splits = stratified_split(dataset, rng=seed)
    train = splits.train
    if balanced:
        train = balance_minority(train, generator, factor=5, rng=seed)
    train_images, mean, std = normalize_images(train.images)
    train = GroupedDataset(train_images, train.labels, train.groups, train.group_names)
    validation = _apply_normalisation(splits.validation, mean, std)
    test = _apply_normalisation(splits.test, mean, std)
    prepared = PreparedData(
        splits=DatasetSplits(train=train, validation=validation, test=test),
        generator=generator,
        mean=mean,
        std=std,
    )
    _DATA_CACHE[key] = prepared
    return prepared


def _apply_normalisation(
    dataset: GroupedDataset, mean: np.ndarray, std: np.ndarray
) -> GroupedDataset:
    images, _, _ = normalize_images(dataset.images, mean, std)
    return GroupedDataset(images, dataset.labels, dataset.groups, dataset.group_names)


def search_spec(
    preset: ScalePreset,
    strategy: str = "fahana",
    *,
    episodes: Optional[int] = None,
    seed: int = 0,
    timing_constraint_ms: float = 1500.0,
    accuracy_constraint: float = 0.0,
    minority_multiplier: float = 1.0,
) -> RunSpec:
    """The declarative :class:`RunSpec` for one search at a preset scale.

    This is the single translation point from :class:`ScalePreset` knobs to
    the run API -- the harnesses that run searches (Table 2, Figure 5) build
    their specs here and hand them to :func:`repro.api.run.run` together
    with the normalised splits from :func:`prepare_data`.  Child training
    uses the legacy batch size (32) so spec-driven runs reproduce the
    historical harness results exactly.
    """
    dermatology = preset.dermatology_config(minority_multiplier)
    return RunSpec(
        strategy=strategy,
        dataset=DatasetSpec(
            image_size=dermatology.image_size,
            num_classes=dermatology.num_classes,
            samples_per_class=dermatology.samples_per_class_majority,
            minority_fraction=dermatology.minority_fraction,
            dark_contrast=dermatology.dark_contrast,
            seed=dermatology.seed,
            split_seed=seed,
        ),
        design=DesignSpecConfig(
            timing_constraint_ms=timing_constraint_ms,
            accuracy_constraint=accuracy_constraint,
        ),
        search=SearchParams(
            episodes=episodes or preset.search_episodes,
            width_multiplier=preset.width_multiplier,
            child_epochs=preset.child_epochs,
            pretrain_epochs=preset.pretrain_epochs,
            max_searchable=preset.max_searchable,
            seed=seed,
        ),
    )


def evaluate_architecture(
    architecture: Union[str, ArchitectureDescriptor],
    preset: ScalePreset,
    seed: int = 0,
    data: Optional[PreparedData] = None,
    reward_config: Optional[RewardConfig] = None,
    cache_tag: str = "default",
) -> ArchitectureEvaluation:
    """Train one architecture at the preset scale and measure the paper's metrics."""
    if isinstance(architecture, str):
        descriptor = get_architecture(architecture)
        name = architecture
    else:
        descriptor = architecture
        name = architecture.name

    cache_key = (name, preset.name, seed, cache_tag)
    if data is None and cache_key in _EVAL_CACHE:
        return _EVAL_CACHE[cache_key]

    prepared = data or prepare_data(preset, seed)
    reward_config = reward_config or RewardConfig(
        alpha=1.0, beta=1.0, accuracy_constraint=0.0, timing_constraint_ms=1500.0
    )

    trainer = Trainer(preset.training_config(seed))
    model = descriptor.build(
        num_classes=prepared.splits.train.num_classes,
        width_multiplier=preset.width_multiplier,
        rng=seed,
    )
    history = trainer.fit(
        model, prepared.splits.train.images, prepared.splits.train.labels
    )
    report = evaluate_fairness(model, prepared.splits.test, trainer)

    latency_pi = estimate_latency_ms(descriptor, RASPBERRY_PI_4)
    latency_odroid = estimate_latency_ms(descriptor, ODROID_XU4)
    reward = compute_reward(
        accuracy=report.overall_accuracy,
        unfairness=report.unfairness,
        latency_ms=latency_pi,
        config=reward_config,
    )
    evaluation = ArchitectureEvaluation(
        name=name,
        params=descriptor.param_count(),
        storage_mb=descriptor.storage_mb(),
        latency_pi_ms=latency_pi,
        latency_odroid_ms=latency_odroid,
        accuracy=report.overall_accuracy,
        group_accuracy=dict(report.group_accuracy),
        unfairness=report.unfairness,
        reward=reward,
        meets_timing=latency_pi <= reward_config.timing_constraint_ms,
        meets_accuracy=report.overall_accuracy >= reward_config.accuracy_constraint,
        train_accuracy=history.final_accuracy,
    )
    if data is None:
        _EVAL_CACHE[cache_key] = evaluation
    return evaluation


def evaluate_architectures(
    names: List[str],
    preset: ScalePreset,
    seed: int = 0,
    reward_config: Optional[RewardConfig] = None,
) -> List[ArchitectureEvaluation]:
    """Evaluate several registered architectures with shared data and caching."""
    return [
        evaluate_architecture(name, preset, seed, reward_config=reward_config)
        for name in names
    ]
