"""Figure 3: the header extracts common features; fairness lives in the tail.

Streams a batch of majority and a batch of minority images through a
pre-trained MobileNetV2 backbone, measures the per-stage feature variation
between groups with an L2 norm, and reports the resulting frozen/searchable
split point for the paper's gamma = 0.5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.freezing import FreezingAnalysis, analyse_model_freezing
from repro.experiments.common import prepare_data
from repro.experiments.presets import ScalePreset, get_preset
from repro.nn.trainer import Trainer
from repro.utils.tabulate import format_table
from repro.zoo.registry import get_architecture


@dataclass
class Figure3Result:
    """Per-stage variation plus the derived split point."""

    analysis: FreezingAnalysis
    backbone: str
    preset_name: str


def run(
    preset: ScalePreset = None,
    seed: int = 0,
    backbone: str = "MobileNetV2",
    gamma: float = 0.5,
) -> Figure3Result:
    """Reproduce the Figure 3 analysis at the chosen scale."""
    preset = preset or get_preset("ci")
    data = prepare_data(preset, seed)
    descriptor = get_architecture(backbone)
    model = descriptor.build(
        num_classes=data.splits.train.num_classes,
        width_multiplier=preset.width_multiplier,
        rng=seed,
    )
    trainer = Trainer(preset.training_config(seed))
    trainer.fit(model, data.splits.train.images, data.splits.train.labels)
    analysis = analyse_model_freezing(
        model,
        data.splits.train,
        gamma=gamma,
        num_stages=1 + len(descriptor.blocks),
        rng=seed,
    )
    return Figure3Result(analysis=analysis, backbone=backbone, preset_name=preset.name)


def render(result: Figure3Result) -> str:
    """Per-stage variation series (the paper's blue curve) and the split."""
    rows = []
    for index, variation in enumerate(result.analysis.variations):
        stage = "stem" if index == 0 else f"block {index}"
        status = "frozen" if index < result.analysis.split_index else "searchable"
        rows.append([stage, f"{variation:.4f}", status])
    table = format_table(["stage", "feature variation", "role"], rows)
    return (
        f"Figure 3: per-stage group feature variation of {result.backbone} "
        f"(gamma={result.analysis.gamma}, threshold={result.analysis.threshold:.4f})\n"
        + table
        + f"\nsplit point: stage {result.analysis.split_index} "
        f"({result.analysis.num_frozen_stages} stages frozen)"
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
