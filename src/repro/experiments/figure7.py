"""Figure 7: visualisation of the FaHaNa-Fair architecture.

The paper's insight: MB blocks extract common features cheaply in the
high-resolution header while larger CB/RB blocks in the tail provide the
capacity that fairness needs.  The harness renders the block sequence of the
reference FaHaNa-Fair descriptor (or of a freshly searched network when a
search result is supplied) and summarises the block-type distribution of
header versus tail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.fahana import FaHaNaResult
from repro.zoo.descriptors import ArchitectureDescriptor
from repro.zoo.registry import get_architecture


@dataclass
class Figure7Result:
    """The visualised architecture plus header/tail block statistics."""

    descriptor: ArchitectureDescriptor
    header_types: Dict[str, int]
    tail_types: Dict[str, int]

    @property
    def tail_uses_larger_blocks(self) -> bool:
        """Whether the tail contains CB/RB blocks (the paper's observation)."""
        return any(t in self.tail_types for t in ("CB", "RB", "RBB"))


def run(search_result: Optional[FaHaNaResult] = None) -> Figure7Result:
    """Visualise FaHaNa-Fair (or the fairest child of a search result)."""
    if search_result is not None and search_result.fairest is not None:
        descriptor = search_result.fairest.descriptor
    else:
        descriptor = get_architecture("FaHaNa-Fair")
    blocks = [b for b in descriptor.blocks if b.block_type != "SKIP"]
    half = max(1, len(blocks) // 2)
    header_types: Dict[str, int] = {}
    tail_types: Dict[str, int] = {}
    for index, block in enumerate(blocks):
        bucket = header_types if index < half else tail_types
        bucket[block.block_type] = bucket.get(block.block_type, 0) + 1
    return Figure7Result(
        descriptor=descriptor, header_types=header_types, tail_types=tail_types
    )


def render(result: Figure7Result) -> str:
    """The block-by-block architecture listing (the paper's Figure 7)."""
    lines = [
        "Figure 7: FaHaNa-Fair architecture",
        result.descriptor.describe(),
        "",
        f"header block types: {result.header_types}",
        f"tail block types:   {result.tail_types}",
        "insight reproduced: tail uses larger CB/RB blocks = "
        + ("yes" if result.tail_uses_larger_blocks else "no"),
    ]
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
