"""Figure 2: neural architectures affect fairness.

Per-architecture majority (light-skin) and minority (dark-skin) accuracy bars
plus the unfairness-score line across the competitor networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments import paper_values
from repro.experiments.common import ArchitectureEvaluation, evaluate_architecture
from repro.experiments.presets import ScalePreset, get_preset
from repro.utils.tabulate import format_table

FIGURE2_NETWORKS: List[str] = [
    "MnasNet 0.5",
    "ProxylessNAS(M)",
    "MobileNetV3(S)",
    "ProxylessNAS(G)",
    "MnasNet 1.0",
    "MobileNetV2",
    "ResNet-18",
]


@dataclass
class Figure2Result:
    """Per-architecture group accuracies and unfairness."""

    evaluations: List[ArchitectureEvaluation]
    preset_name: str


def run(preset: ScalePreset = None, seed: int = 0) -> Figure2Result:
    """Reproduce Figure 2 at the chosen scale."""
    preset = preset or get_preset("ci")
    evaluations = [
        evaluate_architecture(name, preset, seed) for name in FIGURE2_NETWORKS
    ]
    return Figure2Result(evaluations=evaluations, preset_name=preset.name)


def render(result: Figure2Result) -> str:
    """Rows comparable to the Figure 2 bars/line."""
    rows = []
    for evaluation in result.evaluations:
        paper_unfairness = paper_values.FIGURE2_UNFAIRNESS.get(
            evaluation.name, float("nan")
        )
        rows.append(
            [
                evaluation.name,
                f"{evaluation.light_accuracy:.2%}",
                f"{evaluation.dark_accuracy:.2%}",
                f"{evaluation.unfairness:.4f}",
                f"{paper_unfairness:.4f}",
            ]
        )
    return "Figure 2: per-group accuracy and unfairness\n" + format_table(
        ["model", "light acc", "dark acc", "unfairness (repro)", "unfairness (paper)"],
        rows,
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
