"""Figure 6: accuracy/unfairness Pareto frontiers for groups G1 and G2.

Re-uses the Table 3 evaluations and extracts the non-dominated set in
(accuracy up, unfairness down) per group, showing whether the FaHaNa nets sit
on (and extend) the frontier as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments.presets import ScalePreset, get_preset
from repro.experiments.table3 import Table3Result, Table3Row, run as run_table3
from repro.utils.pareto import pareto_frontier
from repro.utils.tabulate import format_table


@dataclass
class Figure6Result:
    """Pareto-front membership per group."""

    table3: Table3Result
    frontier_g1: List[Table3Row]
    frontier_g2: List[Table3Row]
    preset_name: str

    def is_on_frontier(self, name: str) -> bool:
        return any(
            row.evaluation.name == name for row in self.frontier_g1 + self.frontier_g2
        )


def run(preset: ScalePreset = None, seed: int = 0) -> Figure6Result:
    """Reproduce Figure 6 at the chosen scale."""
    preset = preset or get_preset("ci")
    table3 = run_table3(preset, seed)
    frontiers = {}
    for group in (1, 2):
        rows = table3.group_rows(group)
        frontiers[group] = pareto_frontier(
            rows,
            objectives=lambda row: (row.evaluation.accuracy, row.evaluation.unfairness),
            maximise=(True, False),
        )
    return Figure6Result(
        table3=table3,
        frontier_g1=frontiers[1],
        frontier_g2=frontiers[2],
        preset_name=preset.name,
    )


def render(result: Figure6Result) -> str:
    """Scatter points with Pareto membership per group."""
    sections = []
    for group, frontier in ((1, result.frontier_g1), (2, result.frontier_g2)):
        frontier_names = {row.evaluation.name for row in frontier}
        rows = []
        for row in result.table3.group_rows(group):
            rows.append(
                [
                    row.evaluation.name,
                    f"{row.evaluation.accuracy:.2%}",
                    f"{row.evaluation.unfairness:.4f}",
                    "yes" if row.evaluation.name in frontier_names else "no",
                ]
            )
        sections.append(
            f"Figure 6({'a' if group == 1 else 'b'}): group G{group}\n"
            + format_table(["model", "accuracy", "unfairness", "on Pareto front"], rows)
        )
    return "\n\n".join(sections)


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
