"""Run every experiment harness at a chosen scale preset."""

from __future__ import annotations

import argparse
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.experiments import (
    figure1,
    figure2,
    figure3,
    figure5,
    figure6,
    figure7,
    table1,
    table2,
    table3,
    table4,
)
from repro.experiments.presets import ScalePreset, get_preset

EXPERIMENTS: List[Tuple[str, Callable, Callable]] = [
    ("figure1", figure1.run, figure1.render),
    ("figure2", figure2.run, figure2.render),
    ("table1", table1.run, table1.render),
    ("figure3", figure3.run, figure3.render),
    ("figure5", figure5.run, figure5.render),
    ("table2", table2.run, table2.render),
    ("table3", table3.run, table3.render),
    ("table4", table4.run, table4.render),
    ("figure6", figure6.run, figure6.render),
    ("figure7", lambda preset=None, seed=0: figure7.run(), lambda r: figure7.render(r)),
]


def run_all(
    preset: Optional[ScalePreset] = None,
    seed: int = 0,
    only: Optional[List[str]] = None,
) -> Dict[str, str]:
    """Run each harness and return its rendered output keyed by name."""
    preset = preset or get_preset("ci")
    outputs: Dict[str, str] = {}
    for name, run_fn, render_fn in EXPERIMENTS:
        if only is not None and name not in only:
            continue
        start = time.perf_counter()
        result = run_fn(preset=preset, seed=seed) if name != "figure7" else run_fn()
        rendered = render_fn(result)
        elapsed = time.perf_counter() - start
        outputs[name] = rendered + f"\n[{name} completed in {elapsed:.1f}s at preset '{preset.name}']"
    return outputs


def main() -> None:  # pragma: no cover - CLI convenience
    parser = argparse.ArgumentParser(description="Run the paper's experiments")
    parser.add_argument("--preset", default="ci", help="ci, small, full, or paper")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--only", nargs="*", default=None, help="subset of experiments")
    args = parser.parse_args()
    outputs = run_all(get_preset(args.preset), args.seed, args.only)
    for name, text in outputs.items():
        print("=" * 80)
        print(text)
        print()


if __name__ == "__main__":  # pragma: no cover
    main()
