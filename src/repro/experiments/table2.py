"""Table 2: effectiveness of the freezing method.

Runs MONAS (no freezing, no latency bypass) and FaHaNa with the same episode
budget under a tight and a relaxed timing constraint, then compares search
space size, valid-architecture ratio and wall-clock search time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.api.run import run as run_spec
from repro.core.fahana import FaHaNaResult
from repro.experiments import paper_values
from repro.experiments.common import prepare_data, search_spec
from repro.experiments.presets import ScalePreset, get_preset
from repro.utils.tabulate import format_table

TIGHT_TC_MS = 700.0
RELAXED_TC_MS = 2500.0


@dataclass
class Table2Result:
    """MONAS and FaHaNa runs under both timing constraints."""

    runs: Dict[str, Dict[str, FaHaNaResult]]
    preset_name: str

    def speedup(self, constraint: str) -> float:
        """FaHaNa search-time speedup over MONAS for a constraint key."""
        monas = self.runs["MONAS"][constraint].history.total_seconds
        fahana = self.runs["FaHaNa"][constraint].history.total_seconds
        if fahana <= 0:
            return float("inf")
        return monas / fahana


def run(
    preset: ScalePreset = None,
    seed: int = 0,
    episodes: Optional[int] = None,
    tight_tc_ms: float = TIGHT_TC_MS,
    relaxed_tc_ms: float = RELAXED_TC_MS,
) -> Table2Result:
    """Reproduce Table 2 at the chosen scale."""
    preset = preset or get_preset("ci")
    data = prepare_data(preset, seed)
    budget = episodes or preset.search_episodes
    runs: Dict[str, Dict[str, FaHaNaResult]] = {"MONAS": {}, "FaHaNa": {}}
    for constraint, tc in (("tight", tight_tc_ms), ("relaxed", relaxed_tc_ms)):
        for method, strategy in (("MONAS", "monas"), ("FaHaNa", "fahana")):
            spec = search_spec(
                preset,
                strategy,
                episodes=budget,
                seed=seed,
                timing_constraint_ms=tc,
            )
            runs[method][constraint] = run_spec(
                spec,
                train_dataset=data.splits.train,
                validation_dataset=data.splits.validation,
            ).result
    return Table2Result(runs=runs, preset_name=preset.name)


def render(result: Table2Result) -> str:
    """Rows matching the paper's Table 2 layout."""
    rows = []
    for method in ("MONAS", "FaHaNa"):
        tight = result.runs[method]["tight"].history
        relaxed = result.runs[method]["relaxed"].history
        paper = paper_values.TABLE2[method]
        rows.append(
            [
                method,
                f"{tight.space_size:.1e}",
                f"{paper['space_size']:.0e}",
                f"{tight.valid_ratio():.2%}",
                f"{tight.total_seconds:.1f}s",
                f"{result.speedup('tight'):.2f}x" if method == "FaHaNa" else "1.00x",
                f"{relaxed.valid_ratio():.2%}",
                f"{relaxed.total_seconds:.1f}s",
                f"{result.speedup('relaxed'):.2f}x" if method == "FaHaNa" else "1.00x",
            ]
        )
    header = [
        "method",
        "space (repro)",
        "space (paper)",
        "valid tight",
        "time tight",
        "speedup tight",
        "valid relaxed",
        "time relaxed",
        "speedup relaxed",
    ]
    return "Table 2: freezing effectiveness (MONAS vs FaHaNa)\n" + format_table(
        header, rows
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
