"""Scale presets.

The paper trains every network for 500 epochs on a 48-GPU cluster and runs
500 NAS episodes; a numpy reproduction cannot afford that, so every
experiment accepts a :class:`ScalePreset` selecting the budget.  The code
path is identical across presets -- only dataset size, input resolution,
width multiplier and epoch/episode counts change.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List

from repro.data.dermatology import DermatologyConfig
from repro.nn.trainer import TrainingConfig


@dataclass(frozen=True)
class ScalePreset:
    """Budget knobs shared by every experiment harness."""

    name: str
    image_size: int
    samples_per_class: int
    minority_fraction: float
    width_multiplier: float
    train_epochs: int
    batch_size: int
    learning_rate: float
    search_episodes: int
    child_epochs: int
    pretrain_epochs: int
    max_searchable: int
    dataset_seed: int = 2022

    def dermatology_config(self, minority_multiplier: float = 1.0) -> DermatologyConfig:
        """Dataset configuration for this preset.

        ``minority_multiplier`` scales the minority volume (used by the
        Figure 1(b) and Table 4 data-balancing experiments).
        """
        if minority_multiplier <= 0:
            raise ValueError("minority_multiplier must be positive")
        return DermatologyConfig(
            image_size=self.image_size,
            samples_per_class_majority=self.samples_per_class,
            minority_fraction=min(1.0, self.minority_fraction * minority_multiplier),
            seed=self.dataset_seed,
        )

    def training_config(self, seed: int = 0) -> TrainingConfig:
        """Training configuration for fully-trained (non-NAS) networks."""
        return TrainingConfig(
            epochs=self.train_epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            seed=seed,
        )

    def child_training_config(self, seed: int = 0) -> TrainingConfig:
        """Training configuration for NAS child networks (cheaper)."""
        return TrainingConfig(
            epochs=self.child_epochs,
            batch_size=self.batch_size,
            learning_rate=self.learning_rate,
            seed=seed,
        )


CI = ScalePreset(
    name="ci",
    image_size=16,
    samples_per_class=20,
    minority_fraction=0.25,
    width_multiplier=0.25,
    train_epochs=6,
    batch_size=16,
    learning_rate=5e-3,
    search_episodes=4,
    child_epochs=2,
    pretrain_epochs=2,
    max_searchable=4,
)

SMALL = ScalePreset(
    name="small",
    image_size=24,
    samples_per_class=48,
    minority_fraction=0.25,
    width_multiplier=0.35,
    train_epochs=20,
    batch_size=16,
    learning_rate=8e-3,
    search_episodes=24,
    child_epochs=6,
    pretrain_epochs=6,
    max_searchable=6,
)

FULL = ScalePreset(
    name="full",
    image_size=32,
    samples_per_class=120,
    minority_fraction=0.25,
    width_multiplier=0.5,
    train_epochs=40,
    batch_size=32,
    learning_rate=8e-3,
    search_episodes=60,
    child_epochs=10,
    pretrain_epochs=10,
    max_searchable=8,
)

PAPER = ScalePreset(
    name="paper",
    image_size=224,
    samples_per_class=2000,
    minority_fraction=0.2,
    width_multiplier=1.0,
    train_epochs=500,
    batch_size=32,
    learning_rate=0.1,
    search_episodes=500,
    child_epochs=50,
    pretrain_epochs=50,
    max_searchable=17,
)

_PRESETS: Dict[str, ScalePreset] = {
    "ci": CI,
    "small": SMALL,
    "full": FULL,
    "paper": PAPER,
}


def list_presets() -> List[str]:
    """Names of the available presets."""
    return sorted(_PRESETS)


def get_preset(name: str) -> ScalePreset:
    """Look up a preset by name."""
    key = name.lower().strip()
    if key not in _PRESETS:
        raise KeyError(f"unknown preset {name!r}; known: {', '.join(sorted(_PRESETS))}")
    return _PRESETS[key]
