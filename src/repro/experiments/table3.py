"""Table 3: FaHaNa-Nets versus the existing architectures.

Group G1 holds models under 4 M parameters (accuracy constraint 81%), group
G2 the larger models (constraint 83%).  For every architecture the harness
reports parameters, overall / per-group accuracy, unfairness, the fairness
improvement over the group baseline (MobileNetV2 for G1, ResNet-50 for G2),
the reward, storage, and latency / speedup on both edge devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.core.reward import RewardConfig
from repro.experiments import paper_values
from repro.experiments.common import ArchitectureEvaluation, evaluate_architecture
from repro.experiments.presets import ScalePreset, get_preset
from repro.utils.tabulate import format_table
from repro.zoo.registry import GROUP_LARGE, GROUP_SMALL

GROUP1_BASELINE = "MobileNetV2"
GROUP2_BASELINE = "ResNet-50"


@dataclass
class Table3Row:
    """One architecture's measured columns plus derived comparisons."""

    evaluation: ArchitectureEvaluation
    group: int
    fairness_improvement: float
    storage_reduction: float
    pi_speedup: float
    odroid_speedup: float


@dataclass
class Table3Result:
    """All rows of both groups."""

    rows: List[Table3Row]
    preset_name: str

    def row(self, name: str) -> Table3Row:
        for row in self.rows:
            if row.evaluation.name == name:
                return row
        raise KeyError(f"unknown architecture {name!r}")

    def group_rows(self, group: int) -> List[Table3Row]:
        return [row for row in self.rows if row.group == group]


def run(preset: ScalePreset = None, seed: int = 0) -> Table3Result:
    """Reproduce Table 3 at the chosen scale."""
    preset = preset or get_preset("ci")
    rows: List[Table3Row] = []
    for group_id, names, baseline_name in (
        (1, GROUP_SMALL, GROUP1_BASELINE),
        (2, GROUP_LARGE, GROUP2_BASELINE),
    ):
        reward_config = RewardConfig(
            alpha=1.0,
            beta=1.0,
            accuracy_constraint=0.0,
            timing_constraint_ms=float("inf"),
        )
        evaluations = {
            name: evaluate_architecture(name, preset, seed, reward_config=reward_config)
            for name in names
        }
        baseline = evaluations[baseline_name]
        for name in names:
            evaluation = evaluations[name]
            improvement = 0.0
            if baseline.unfairness > 0:
                improvement = (
                    baseline.unfairness - evaluation.unfairness
                ) / baseline.unfairness
            rows.append(
                Table3Row(
                    evaluation=evaluation,
                    group=group_id,
                    fairness_improvement=improvement,
                    storage_reduction=baseline.storage_mb / max(evaluation.storage_mb, 1e-9),
                    pi_speedup=baseline.latency_pi_ms / max(evaluation.latency_pi_ms, 1e-9),
                    odroid_speedup=baseline.latency_odroid_ms
                    / max(evaluation.latency_odroid_ms, 1e-9),
                )
            )
    return Table3Result(rows=rows, preset_name=preset.name)


def render(result: Table3Result) -> str:
    """Rows in the paper's Table 3 layout with paper references."""
    header = [
        "grp",
        "model",
        "params",
        "acc",
        "light",
        "dark",
        "unfair (repro)",
        "unfair (paper)",
        "fair comp",
        "storage MB",
        "Pi ms",
        "Pi speedup",
        "Odroid ms",
        "Odroid speedup",
    ]
    rows = []
    for row in result.rows:
        evaluation = row.evaluation
        paper = paper_values.TABLE3.get(evaluation.name, {})
        rows.append(
            [
                f"G{row.group}",
                evaluation.name,
                f"{evaluation.params:,}",
                f"{evaluation.accuracy:.2%}",
                f"{evaluation.light_accuracy:.2%}",
                f"{evaluation.dark_accuracy:.2%}",
                f"{evaluation.unfairness:.4f}",
                f"{paper.get('unfairness', float('nan')):.4f}",
                f"{row.fairness_improvement:+.2%}",
                f"{evaluation.storage_mb:.2f}",
                f"{evaluation.latency_pi_ms:.1f}",
                f"{row.pi_speedup:.2f}x",
                f"{evaluation.latency_odroid_ms:.1f}",
                f"{row.odroid_speedup:.2f}x",
            ]
        )
    return "Table 3: FaHaNa-Nets vs existing architectures\n" + format_table(
        header, rows
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
