"""Table 4: FaHaNa is compatible with data-balancing techniques.

Re-trains a set of networks with 5x additional minority training data
(generated, mirroring the fair generative modelling of [18]) and compares
accuracy and unfairness against the unbalanced training runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments import paper_values
from repro.experiments.common import (
    ArchitectureEvaluation,
    evaluate_architecture,
    prepare_data,
)
from repro.experiments.presets import ScalePreset, get_preset
from repro.utils.tabulate import format_table

TABLE4_NETWORKS: List[str] = [
    "MobileNetV2",
    "ProxylessNAS(M)",
    "MnasNet 0.5",
    "MobileNetV3(S)",
    "MnasNet 1.0",
    "FaHaNa-Small",
]


@dataclass
class Table4Row:
    """Unbalanced and balanced evaluation of one network."""

    unbalanced: ArchitectureEvaluation
    balanced: ArchitectureEvaluation

    @property
    def accuracy_improvement(self) -> float:
        return self.balanced.accuracy - self.unbalanced.accuracy

    @property
    def unfairness_improvement(self) -> float:
        return self.unbalanced.unfairness - self.balanced.unfairness


@dataclass
class Table4Result:
    """One row per network."""

    rows: Dict[str, Table4Row]
    preset_name: str

    def fairest_balanced(self) -> str:
        """Name of the fairest model after balancing."""
        return min(self.rows, key=lambda name: self.rows[name].balanced.unfairness)


def run(
    preset: ScalePreset = None, seed: int = 0, networks: List[str] = None
) -> Table4Result:
    """Reproduce Table 4 at the chosen scale."""
    preset = preset or get_preset("ci")
    networks = networks or TABLE4_NETWORKS
    balanced_data = prepare_data(preset, seed, balanced=True)
    rows: Dict[str, Table4Row] = {}
    for name in networks:
        unbalanced = evaluate_architecture(name, preset, seed)
        balanced = evaluate_architecture(
            name, preset, seed, data=balanced_data, cache_tag="balanced"
        )
        rows[name] = Table4Row(unbalanced=unbalanced, balanced=balanced)
    return Table4Result(rows=rows, preset_name=preset.name)


def render(result: Table4Result) -> str:
    """Rows in the paper's Table 4 layout."""
    header = [
        "model",
        "acc",
        "unfair",
        "acc (bal)",
        "acc impr",
        "unfair (bal)",
        "unfair impr",
        "unfair bal (paper)",
    ]
    rows = []
    for name, row in result.rows.items():
        paper = paper_values.TABLE4.get(name, {})
        rows.append(
            [
                name,
                f"{row.unbalanced.accuracy:.2%}",
                f"{row.unbalanced.unfairness:.4f}",
                f"{row.balanced.accuracy:.2%}",
                f"{row.accuracy_improvement:+.2%}",
                f"{row.balanced.unfairness:.4f}",
                f"{row.unfairness_improvement:+.4f}",
                f"{paper.get('unfairness_balanced', float('nan')):.4f}",
            ]
        )
    return "Table 4: compatibility with data balancing (5x minority data)\n" + format_table(
        header, rows
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
