"""Table 1: models with <30 MB storage on a Raspberry Pi with TC = 1500 ms.

Shows that hardware specifications and fairness interact: only the smallest
models meet the timing constraint, and those are either unfair (MnasNet 0.5,
MobileNetV3-S) or wildly inaccurate (SqueezeNet).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.experiments import paper_values
from repro.experiments.common import ArchitectureEvaluation, evaluate_architecture
from repro.experiments.presets import ScalePreset, get_preset
from repro.utils.tabulate import format_table

TABLE1_NETWORKS: List[str] = [
    "SqueezeNet 1.0",
    "MobileNetV3(S)",
    "MnasNet 0.5",
    "MobileNetV2",
    "ProxylessNAS(G)",
    "MnasNet 1.0",
    "ProxylessNAS(M)",
]

TIMING_CONSTRAINT_MS = 1500.0
STORAGE_BUDGET_MB = 30.0


@dataclass
class Table1Result:
    """One row per network, plus the constraint used."""

    evaluations: List[ArchitectureEvaluation]
    timing_constraint_ms: float
    preset_name: str

    def meets_spec(self, name: str) -> bool:
        for evaluation in self.evaluations:
            if evaluation.name == name:
                return evaluation.latency_pi_ms <= self.timing_constraint_ms
        raise KeyError(f"unknown network {name!r}")


def run(preset: ScalePreset = None, seed: int = 0) -> Table1Result:
    """Reproduce Table 1 at the chosen scale."""
    preset = preset or get_preset("ci")
    evaluations = [
        evaluate_architecture(name, preset, seed) for name in TABLE1_NETWORKS
    ]
    return Table1Result(
        evaluations=evaluations,
        timing_constraint_ms=TIMING_CONSTRAINT_MS,
        preset_name=preset.name,
    )


def render(result: Table1Result) -> str:
    """Rows in the paper's Table 1 format, with the paper's latency alongside."""
    rows = []
    for evaluation in result.evaluations:
        paper = paper_values.TABLE1.get(evaluation.name, {})
        meets = evaluation.latency_pi_ms <= result.timing_constraint_ms
        rows.append(
            [
                evaluation.name,
                f"{evaluation.latency_pi_ms:.1f}",
                f"{paper.get('latency_pi_ms', float('nan')):.1f}",
                f"{evaluation.storage_mb:.2f}",
                f"{evaluation.accuracy:.2%}",
                f"{evaluation.unfairness:.4f}",
                "yes" if meets else "no",
                "yes" if paper.get("meets_spec") else "no",
            ]
        )
    header = [
        "model",
        "latency ms (repro)",
        "latency ms (paper)",
        "storage MB",
        "accuracy",
        "unfairness",
        "meets spec (repro)",
        "meets spec (paper)",
    ]
    return (
        f"Table 1: Raspberry Pi, TC = {result.timing_constraint_ms:.0f} ms\n"
        + format_table(header, rows)
    )


def main() -> None:  # pragma: no cover - CLI convenience
    print(render(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
