"""Figure 1: fairness versus model size on existing neural networks.

(a) larger networks within / across families have lower unfairness scores;
(b) even trained with several times more minority data, a small network
(MnasNet 0.5) remains less fair than a large one (ResNet-18) without extra
data -- the architecture matters at least as much as data balancing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.experiments import paper_values
from repro.experiments.common import (
    ArchitectureEvaluation,
    evaluate_architecture,
    prepare_data,
)
from repro.experiments.presets import ScalePreset, get_preset
from repro.utils.tabulate import format_table

# Networks of Figure 1(a), ordered by model size.
FIGURE1A_NETWORKS: List[str] = [
    "MnasNet 0.5",
    "MobileNetV3(S)",
    "MobileNetV2",
    "ProxylessNAS(M)",
    "MnasNet 1.0",
    "ProxylessNAS(G)",
    "ResNet-18",
]

# Minority-data multipliers of Figure 1(b).
FIGURE1B_MULTIPLIERS: List[float] = [1.0, 2.0, 3.0, 5.0]


@dataclass
class Figure1Result:
    """Both panels of Figure 1."""

    size_fairness: List[ArchitectureEvaluation]
    minority_sweep: Dict[float, ArchitectureEvaluation]
    reference_large: ArchitectureEvaluation
    preset_name: str


def run(preset: ScalePreset = None, seed: int = 0) -> Figure1Result:
    """Reproduce Figure 1 at the chosen scale."""
    preset = preset or get_preset("ci")
    evaluations = [
        evaluate_architecture(name, preset, seed) for name in FIGURE1A_NETWORKS
    ]

    sweep: Dict[float, ArchitectureEvaluation] = {}
    for multiplier in FIGURE1B_MULTIPLIERS:
        data = prepare_data(preset, seed, minority_multiplier=multiplier)
        sweep[multiplier] = evaluate_architecture(
            "MnasNet 0.5", preset, seed, data=data, cache_tag=f"minority{multiplier}"
        )
    reference_large = evaluate_architecture("ResNet-18", preset, seed)
    return Figure1Result(
        size_fairness=evaluations,
        minority_sweep=sweep,
        reference_large=reference_large,
        preset_name=preset.name,
    )


def render(result: Figure1Result) -> str:
    """Print the series behind both panels, with the paper's values alongside."""
    rows = []
    for evaluation in sorted(result.size_fairness, key=lambda e: e.params):
        paper = paper_values.TABLE3.get(evaluation.name, {})
        rows.append(
            [
                evaluation.name,
                f"{evaluation.params / 1e6:.2f}M",
                f"{evaluation.unfairness:.4f}",
                f"{paper.get('unfairness', float('nan')):.4f}",
            ]
        )
    part_a = format_table(
        ["model", "size", "unfairness (repro)", "unfairness (paper)"], rows
    )

    rows_b = []
    for multiplier, evaluation in sorted(result.minority_sweep.items()):
        rows_b.append(
            [
                f"MnasNet 0.5 @ {multiplier:g}x minority",
                f"{evaluation.unfairness:.4f}",
                f"{evaluation.accuracy:.2%}",
            ]
        )
    rows_b.append(
        [
            "ResNet-18 (no balancing)",
            f"{result.reference_large.unfairness:.4f}",
            f"{result.reference_large.accuracy:.2%}",
        ]
    )
    part_b = format_table(["configuration", "unfairness", "accuracy"], rows_b)
    return (
        "Figure 1(a): unfairness vs model size\n"
        + part_a
        + "\n\nFigure 1(b): unfairness vs minority-data volume\n"
        + part_b
    )


def main() -> None:  # pragma: no cover - CLI convenience
    result = run()
    print(render(result))


if __name__ == "__main__":  # pragma: no cover
    main()
