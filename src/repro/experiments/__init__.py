"""Experiment harnesses: one module per table / figure of the paper.

Every module exposes a ``run(preset=..., seed=...)`` function returning a
result dataclass and a ``render(result)`` helper that prints rows comparable
to the published table or figure.  ``repro.experiments.runner.run_all``
executes everything at a chosen scale preset.
"""

from repro.experiments.presets import ScalePreset, get_preset, list_presets
from repro.experiments import paper_values

__all__ = [
    "ScalePreset",
    "get_preset",
    "list_presets",
    "paper_values",
]
