"""Data balancing: generate additional minority-group training data.

The paper's Table 4 applies the fair generative modelling approach of Choi et
al. [18] to obtain 5x more minority data and shows that FaHaNa is compatible
with (and still ahead after) such balancing.  With the synthetic substrate,
"generating" new minority samples means sampling fresh images of the minority
group from the same generator, which plays the same role in the pipeline.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.dataset import GroupedDataset
from repro.data.dermatology import DermatologyGenerator
from repro.utils.rng import SeedLike, new_rng


def balance_minority(
    dataset: GroupedDataset,
    generator: DermatologyGenerator,
    factor: int = 5,
    rng: SeedLike = 0,
) -> GroupedDataset:
    """Return ``dataset`` augmented with ``factor``x extra minority samples.

    The minority group is detected from the group counts.  ``factor=5``
    matches the paper ("5x more minority data for training").  The extra
    samples are freshly generated, mimicking a generative balancing model.
    """
    if factor < 1:
        raise ValueError("factor must be at least 1")
    minority = dataset.minority_group()
    minority_count = dataset.group_counts()[minority]
    if minority_count == 0:
        raise ValueError("dataset has no minority samples to balance")
    num_classes = dataset.num_classes
    per_class = max(1, int(round(minority_count * (factor - 1) / num_classes)))
    extra = generator.generate_group(minority, per_class, rng=rng)
    return dataset.concatenate(extra).shuffled(new_rng(rng))


def oversample_minority(
    dataset: GroupedDataset, factor: int = 5, rng: SeedLike = 0
) -> GroupedDataset:
    """Duplicate existing minority samples instead of generating new ones.

    Provided as the simpler baseline balancing strategy; useful in ablations
    against :func:`balance_minority`.
    """
    if factor < 1:
        raise ValueError("factor must be at least 1")
    minority = dataset.minority_group()
    indices = dataset.group_indices(minority)
    generator = new_rng(rng)
    extra_indices = generator.choice(indices, size=(factor - 1) * indices.size, replace=True)
    if extra_indices.size == 0:
        return dataset
    return dataset.concatenate(dataset.subset(extra_indices)).shuffled(generator)
