"""Grouped dataset container and splitting utilities."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.nn.dtype import get_default_dtype
from repro.utils.rng import SeedLike, new_rng

GROUP_LIGHT = "light"
GROUP_DARK = "dark"


@dataclass
class GroupedDataset:
    """Images with class labels and demographic group labels.

    ``images`` has shape (N, 3, H, W) in [0, 1]; ``labels`` holds class
    indices and ``groups`` holds group indices into ``group_names``.
    """

    images: np.ndarray
    labels: np.ndarray
    groups: np.ndarray
    group_names: Tuple[str, ...] = (GROUP_LIGHT, GROUP_DARK)

    def __post_init__(self) -> None:
        # Float images keep their precision (so float32 datasets survive
        # subset()/concatenate() without silent upcasts); anything else is
        # cast to the global dtype policy (float64 unless a run opted into
        # float32 -- see repro.nn.dtype).
        images = np.asarray(self.images)
        if images.dtype not in (np.float32, np.float64):
            images = images.astype(get_default_dtype())
        self.images = images
        self.labels = np.asarray(self.labels, dtype=np.int64)
        self.groups = np.asarray(self.groups, dtype=np.int64)
        if self.images.ndim != 4:
            raise ValueError(f"images must be 4-D (N, C, H, W), got {self.images.shape}")
        n = self.images.shape[0]
        if self.labels.shape != (n,) or self.groups.shape != (n,):
            raise ValueError("labels and groups must match the number of images")
        if self.groups.size and (
            self.groups.min() < 0 or self.groups.max() >= len(self.group_names)
        ):
            raise ValueError("group indices out of range")

    def __len__(self) -> int:
        return int(self.images.shape[0])

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self) else 0

    @property
    def image_size(self) -> int:
        return int(self.images.shape[-1])

    def subset(self, indices: Sequence[int]) -> "GroupedDataset":
        """Return a new dataset restricted to ``indices``."""
        idx = np.asarray(indices, dtype=np.int64)
        return GroupedDataset(
            images=self.images[idx],
            labels=self.labels[idx],
            groups=self.groups[idx],
            group_names=self.group_names,
        )

    def group_indices(self, group: str) -> np.ndarray:
        """Indices of every sample belonging to ``group``."""
        if group not in self.group_names:
            raise KeyError(f"unknown group {group!r}; known: {self.group_names}")
        group_id = self.group_names.index(group)
        return np.nonzero(self.groups == group_id)[0]

    def group_counts(self) -> Dict[str, int]:
        """Number of samples per group."""
        return {
            name: int((self.groups == index).sum())
            for index, name in enumerate(self.group_names)
        }

    def minority_group(self) -> str:
        """Name of the smallest group (the paper's dark-skin group)."""
        counts = self.group_counts()
        return min(counts, key=counts.get)

    def majority_group(self) -> str:
        """Name of the largest group (the paper's light-skin group)."""
        counts = self.group_counts()
        return max(counts, key=counts.get)

    def concatenate(self, other: "GroupedDataset") -> "GroupedDataset":
        """Append ``other`` (used by the data-balancing pipeline)."""
        if other.group_names != self.group_names:
            raise ValueError("cannot concatenate datasets with different groups")
        if other.images.shape[1:] != self.images.shape[1:]:
            raise ValueError("cannot concatenate datasets with different image shapes")
        return GroupedDataset(
            images=np.concatenate([self.images, other.images]),
            labels=np.concatenate([self.labels, other.labels]),
            groups=np.concatenate([self.groups, other.groups]),
            group_names=self.group_names,
        )

    def shuffled(self, rng: SeedLike = None) -> "GroupedDataset":
        """Return a copy with samples in random order."""
        order = new_rng(rng).permutation(len(self))
        return self.subset(order)


@dataclass
class DatasetSplits:
    """Train / validation / test partition of a :class:`GroupedDataset`."""

    train: GroupedDataset
    validation: GroupedDataset
    test: GroupedDataset

    @property
    def sizes(self) -> Tuple[int, int, int]:
        return (len(self.train), len(self.validation), len(self.test))


def stratified_split(
    dataset: GroupedDataset,
    train_fraction: float = 0.6,
    validation_fraction: float = 0.2,
    rng: SeedLike = 0,
) -> DatasetSplits:
    """Split 60/20/20 as in the paper, stratified by (class, group).

    Stratification guarantees that every split contains samples of every
    class-group combination whenever the source dataset does, which keeps the
    per-group accuracy (and therefore the unfairness score) well defined on
    the validation and test sets.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must be in (0, 1)")
    if not 0.0 < validation_fraction < 1.0 - train_fraction:
        raise ValueError("validation_fraction leaves no room for a test split")
    generator = new_rng(rng)
    train_idx: List[int] = []
    val_idx: List[int] = []
    test_idx: List[int] = []
    for class_id in np.unique(dataset.labels):
        for group_id in np.unique(dataset.groups):
            mask = (dataset.labels == class_id) & (dataset.groups == group_id)
            indices = np.nonzero(mask)[0]
            if indices.size == 0:
                continue
            generator.shuffle(indices)
            n_train = max(1, int(round(indices.size * train_fraction)))
            n_val = max(1, int(round(indices.size * validation_fraction)))
            n_train = min(n_train, indices.size - 2) if indices.size >= 3 else n_train
            train_idx.extend(indices[:n_train].tolist())
            val_idx.extend(indices[n_train : n_train + n_val].tolist())
            test_idx.extend(indices[n_train + n_val :].tolist())
    return DatasetSplits(
        train=dataset.subset(train_idx),
        validation=dataset.subset(val_idx),
        test=dataset.subset(test_idx),
    )
