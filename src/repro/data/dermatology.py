"""Synthetic dermatology image generator.

Substitute for the paper's dermatology dataset (ISIC 2019 light-skin images
plus Dermnet / Atlas dermatology dark-skin images, 5 disease classes).  Each
image is a skin-toned background with a class-dependent lesion pattern:

* Melanoma -- large, irregular, asymmetric dark blob,
* Melanocytic nevus -- small, round, well-delimited dark blob,
* Basal cell carcinoma -- ring-shaped (rolled border) lesion,
* Dermatofibroma -- small bright papule with a darker halo,
* Squamous cell carcinoma -- scaly, high-frequency textured patch.

Group difficulty: dark-skin images use a darker base tone *and* a reduced
lesion contrast, which makes the minority group intrinsically harder; trained
on a majority-dominated dataset, small-capacity models give up accuracy on
the minority first.  This reproduces the fairness-versus-capacity behaviour
that the paper's Figures 1 and 2 measure on real data.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.dataset import GROUP_DARK, GROUP_LIGHT, GroupedDataset
from repro.nn.dtype import get_default_dtype
from repro.utils.rng import SeedLike, new_rng

DISEASE_CLASSES: Tuple[str, ...] = (
    "Melanoma",
    "Melanocytic nevus",
    "Basal cell carcinoma",
    "Dermatofibroma",
    "Squamous cell carcinoma",
)

# Mean RGB skin tones per group (fractions of full scale).
_LIGHT_TONE = np.array([0.82, 0.66, 0.58])
_DARK_TONE = np.array([0.42, 0.30, 0.24])
# Lesion pigment colour (melanin-rich brown).
_LESION_TONE = np.array([0.28, 0.17, 0.12])


@dataclass(frozen=True)
class DermatologyConfig:
    """Parameters of the synthetic dataset.

    ``samples_per_class_majority`` controls the light-skin volume per class;
    the dark-skin volume is ``minority_fraction`` of it (the paper's dataset
    has far fewer dark-skin images).  ``dark_contrast`` scales the lesion
    contrast on dark skin and is the main difficulty knob.
    """

    image_size: int = 32
    num_classes: int = 5
    samples_per_class_majority: int = 60
    minority_fraction: float = 0.2
    dark_contrast: float = 0.55
    light_contrast: float = 1.0
    noise_std: float = 0.05
    tone_jitter: float = 0.06
    seed: int = 2022

    def __post_init__(self) -> None:
        if self.image_size < 8:
            raise ValueError("image_size must be at least 8")
        if not 1 <= self.num_classes <= len(DISEASE_CLASSES):
            raise ValueError(
                f"num_classes must be in [1, {len(DISEASE_CLASSES)}]"
            )
        if self.samples_per_class_majority <= 0:
            raise ValueError("samples_per_class_majority must be positive")
        if not 0.0 < self.minority_fraction <= 1.0:
            raise ValueError("minority_fraction must be in (0, 1]")
        if not 0.0 < self.dark_contrast <= 1.5:
            raise ValueError("dark_contrast must be in (0, 1.5]")

    @property
    def samples_per_class_minority(self) -> int:
        return max(1, int(round(self.samples_per_class_majority * self.minority_fraction)))


class DermatologyGenerator:
    """Generates :class:`GroupedDataset` instances from a configuration."""

    def __init__(self, config: Optional[DermatologyConfig] = None):
        self.config = config or DermatologyConfig()
        size = self.config.image_size
        ys, xs = np.meshgrid(np.arange(size), np.arange(size), indexing="ij")
        self._ys = ys.astype(np.float64)
        self._xs = xs.astype(np.float64)

    # -- public API -----------------------------------------------------------
    def generate(self, rng: SeedLike = None) -> GroupedDataset:
        """Generate the full dataset (majority light skin, minority dark skin)."""
        generator = new_rng(self.config.seed if rng is None else rng)
        images: List[np.ndarray] = []
        labels: List[int] = []
        groups: List[int] = []
        for class_id in range(self.config.num_classes):
            for _ in range(self.config.samples_per_class_majority):
                images.append(self._render(class_id, GROUP_LIGHT, generator))
                labels.append(class_id)
                groups.append(0)
            for _ in range(self.config.samples_per_class_minority):
                images.append(self._render(class_id, GROUP_DARK, generator))
                labels.append(class_id)
                groups.append(1)
        # Rendering always happens in float64 (identical RNG draws across
        # precisions); the single cast here makes a float32-policy dataset
        # the rounded image of the exact float64 one.
        dataset = GroupedDataset(
            images=np.stack(images).astype(get_default_dtype(), copy=False),
            labels=np.array(labels),
            groups=np.array(groups),
        )
        return dataset.shuffled(generator)

    def generate_group(
        self,
        group: str,
        samples_per_class: int,
        rng: SeedLike = None,
    ) -> GroupedDataset:
        """Generate extra samples of a single group (used by data balancing)."""
        if group not in (GROUP_LIGHT, GROUP_DARK):
            raise ValueError(f"unknown group {group!r}")
        generator = new_rng(rng)
        images: List[np.ndarray] = []
        labels: List[int] = []
        for class_id in range(self.config.num_classes):
            for _ in range(samples_per_class):
                images.append(self._render(class_id, group, generator))
                labels.append(class_id)
        group_id = 0 if group == GROUP_LIGHT else 1
        return GroupedDataset(
            images=np.stack(images).astype(get_default_dtype(), copy=False),
            labels=np.array(labels),
            groups=np.full(len(labels), group_id),
        )

    # -- rendering --------------------------------------------------------------
    def _render(self, class_id: int, group: str, rng: np.random.Generator) -> np.ndarray:
        config = self.config
        size = config.image_size
        tone = _LIGHT_TONE if group == GROUP_LIGHT else _DARK_TONE
        contrast = (
            config.light_contrast if group == GROUP_LIGHT else config.dark_contrast
        )
        jitter = rng.normal(0.0, config.tone_jitter, size=3)
        base = np.clip(tone + jitter, 0.05, 0.95)
        image = np.broadcast_to(base[:, None, None], (3, size, size)).copy()
        # Low-frequency skin texture.
        image += self._smooth_noise(rng, scale=0.03)

        lesion_delta = self._lesion_delta(class_id, rng)
        image += contrast * lesion_delta
        image += rng.normal(0.0, config.noise_std, size=image.shape)
        return np.clip(image, 0.0, 1.0)

    def _lesion_delta(self, class_id: int, rng: np.random.Generator) -> np.ndarray:
        """Class-dependent additive lesion pattern of shape (3, H, W)."""
        size = self.config.image_size
        center_y = rng.uniform(0.35, 0.65) * size
        center_x = rng.uniform(0.35, 0.65) * size
        dy = self._ys - center_y
        dx = self._xs - center_x

        if class_id == 0:
            mask = self._irregular_blob(dy, dx, rng, radius=0.30 * size, jaggedness=0.45)
            strength = rng.uniform(0.9, 1.1)
        elif class_id == 1:
            mask = self._irregular_blob(dy, dx, rng, radius=0.12 * size, jaggedness=0.08)
            strength = rng.uniform(0.8, 1.0)
        elif class_id == 2:
            mask = self._ring(dy, dx, rng, radius=0.22 * size, width=0.07 * size)
            strength = rng.uniform(0.8, 1.0)
        elif class_id == 3:
            return self._papule(dy, dx, rng, radius=0.10 * size)
        else:
            mask = self._scaly_patch(dy, dx, rng, radius=0.26 * size)
            strength = rng.uniform(0.7, 0.9)

        direction = _LESION_TONE - _LIGHT_TONE  # darkening towards lesion pigment
        return strength * mask[None, :, :] * direction[:, None, None]

    # -- pattern primitives -------------------------------------------------------
    def _irregular_blob(
        self,
        dy: np.ndarray,
        dx: np.ndarray,
        rng: np.random.Generator,
        radius: float,
        jaggedness: float,
    ) -> np.ndarray:
        angle = np.arctan2(dy, dx)
        elongation = rng.uniform(1.0, 1.0 + 4.0 * jaggedness)
        rotation = rng.uniform(0, np.pi)
        rotated_x = dx * np.cos(rotation) + dy * np.sin(rotation)
        rotated_y = -dx * np.sin(rotation) + dy * np.cos(rotation)
        distance = np.sqrt((rotated_x / elongation) ** 2 + rotated_y**2)
        phase = rng.uniform(0, 2 * np.pi, size=3)
        amplitude = rng.uniform(0.0, jaggedness, size=3)
        boundary = radius * (
            1.0
            + amplitude[0] * np.sin(2 * angle + phase[0])
            + amplitude[1] * np.sin(3 * angle + phase[1])
            + amplitude[2] * np.sin(5 * angle + phase[2])
        )
        softness = max(1.0, 0.15 * radius)
        return 1.0 / (1.0 + np.exp((distance - boundary) / softness))

    def _ring(
        self,
        dy: np.ndarray,
        dx: np.ndarray,
        rng: np.random.Generator,
        radius: float,
        width: float,
    ) -> np.ndarray:
        distance = np.sqrt(dx**2 + dy**2)
        ring_radius = radius * rng.uniform(0.9, 1.1)
        ring = np.exp(-((distance - ring_radius) ** 2) / (2 * max(width, 1.0) ** 2))
        return ring

    def _papule(
        self,
        dy: np.ndarray,
        dx: np.ndarray,
        rng: np.random.Generator,
        radius: float,
    ) -> np.ndarray:
        distance2 = dx**2 + dy**2
        sigma = max(radius, 1.0)
        bump = np.exp(-distance2 / (2 * sigma**2))
        halo = np.exp(-distance2 / (2 * (2.2 * sigma) ** 2)) - bump
        brighten = np.array([0.18, 0.16, 0.14])
        darken = 0.8 * (_LESION_TONE - _LIGHT_TONE)
        return (
            bump[None, :, :] * brighten[:, None, None]
            + np.clip(halo, 0.0, None)[None, :, :] * darken[:, None, None]
        )

    def _scaly_patch(
        self,
        dy: np.ndarray,
        dx: np.ndarray,
        rng: np.random.Generator,
        radius: float,
    ) -> np.ndarray:
        distance = np.sqrt(dx**2 + dy**2)
        softness = max(1.0, 0.2 * radius)
        region = 1.0 / (1.0 + np.exp((distance - radius) / softness))
        frequency = rng.uniform(0.8, 1.4)
        texture = 0.5 + 0.5 * np.sin(frequency * self._xs) * np.sin(frequency * self._ys)
        speckle = rng.random(dx.shape) < 0.35
        return region * (0.55 + 0.45 * texture) * (0.7 + 0.6 * speckle)

    def _smooth_noise(self, rng: np.random.Generator, scale: float) -> np.ndarray:
        size = self.config.image_size
        coarse = rng.normal(0.0, scale, size=(3, max(2, size // 8), max(2, size // 8)))
        # Nearest-neighbour upsample to full resolution.
        reps_h = int(np.ceil(size / coarse.shape[1]))
        reps_w = int(np.ceil(size / coarse.shape[2]))
        upsampled = np.repeat(np.repeat(coarse, reps_h, axis=1), reps_w, axis=2)
        return upsampled[:, :size, :size]


def generate_dermatology_dataset(
    config: Optional[DermatologyConfig] = None, rng: SeedLike = None
) -> GroupedDataset:
    """Convenience wrapper: build a generator and produce the dataset."""
    return DermatologyGenerator(config).generate(rng)
