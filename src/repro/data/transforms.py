"""Simple image transforms used by the training pipelines."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import SeedLike, new_rng


def normalize_images(
    images: np.ndarray,
    mean: Optional[np.ndarray] = None,
    std: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Standardise images per channel.

    Returns ``(normalised, mean, std)`` so that the statistics computed on the
    training set can be re-applied to validation / test data.
    """
    if images.ndim != 4:
        raise ValueError(f"expected (N, C, H, W) images, got shape {images.shape}")
    if mean is None:
        mean = images.mean(axis=(0, 2, 3))
    if std is None:
        std = images.std(axis=(0, 2, 3))
    std = np.where(std < 1e-6, 1.0, std)
    normalised = (images - mean[None, :, None, None]) / std[None, :, None, None]
    return normalised, mean, std


def random_horizontal_flip(
    images: np.ndarray, probability: float = 0.5, rng: SeedLike = None
) -> np.ndarray:
    """Flip a random subset of images left-right (data augmentation)."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    generator = new_rng(rng)
    flip_mask = generator.random(images.shape[0]) < probability
    augmented = images.copy()
    augmented[flip_mask] = augmented[flip_mask][:, :, :, ::-1]
    return augmented


def brightness_jitter(
    images: np.ndarray, magnitude: float = 0.1, rng: SeedLike = None
) -> np.ndarray:
    """Add a per-image brightness offset (kept inside [0, 1])."""
    if magnitude < 0:
        raise ValueError("magnitude must be non-negative")
    generator = new_rng(rng)
    offsets = generator.uniform(-magnitude, magnitude, size=(images.shape[0], 1, 1, 1))
    return np.clip(images + offsets, 0.0, 1.0)
