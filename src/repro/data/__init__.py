"""Dermatology data substrate.

The paper evaluates on a dermatology dataset assembled from ISIC 2019
(light-skin majority) plus Dermnet and Atlas dermatology (dark-skin
minority), labelled with five diseases.  Those images are not available in
this environment, so :mod:`repro.data.dermatology` generates a synthetic
stand-in that preserves the properties the paper's experiments rely on:

* a 5-way classification task,
* two demographic groups (light / dark skin tone) with a configurable
  majority / minority imbalance,
* group-dependent difficulty (lower lesion contrast on dark skin), so that
  accuracy is group-dependent and fairness depends on model capacity.
"""

from repro.data.dataset import (
    GroupedDataset,
    DatasetSplits,
    GROUP_LIGHT,
    GROUP_DARK,
    stratified_split,
)
from repro.data.dermatology import (
    DermatologyConfig,
    DermatologyGenerator,
    DISEASE_CLASSES,
    generate_dermatology_dataset,
)
from repro.data.balancing import balance_minority, oversample_minority
from repro.data.transforms import (
    normalize_images,
    random_horizontal_flip,
    brightness_jitter,
)

__all__ = [
    "GroupedDataset",
    "DatasetSplits",
    "GROUP_LIGHT",
    "GROUP_DARK",
    "stratified_split",
    "oversample_minority",
    "brightness_jitter",
    "DermatologyConfig",
    "DermatologyGenerator",
    "DISEASE_CLASSES",
    "generate_dermatology_dataset",
    "balance_minority",
    "normalize_images",
    "random_horizontal_flip",
]
