"""Recursive deterministic freezing: stable hashes over arbitrary object graphs.

``content_fingerprint`` covers JSON-shaped payloads; evaluation contexts
built from richer Python -- custom dataset objects, injected reward
callables, closures over configuration -- fall outside it.  ``freeze`` maps
such a graph onto a canonical token tree of tagged tuples whose leaves are
plain strings, and ``freeze_fingerprint`` hashes that tree, so structurally
equal graphs hash equal across processes (the ``charmonium.freeze`` idiom).

Canonicalisation rules:

* dict items and set elements are ordered by the canonical encoding of
  their frozen form, so insertion order never leaks into the hash;
* floats freeze via ``float.hex()`` (bit-exact, NaN/inf safe), ints via
  ``repr``, bytes and ndarrays by content hash
  (:func:`~repro.utils.fingerprint.array_fingerprint`);
* functions freeze by module-qualified name plus a bytecode digest, their
  defaults and every closure cell's frozen contents -- two lambdas that
  close over different values hash differently, renaming a helper re-keys
  it;
* arbitrary objects freeze as their class's qualified name plus their
  attribute ``__dict__``/``__slots__`` state, sorted.

Escape hatches:

* a class may define ``__freeze__(self)`` returning the state that *should*
  be hashed (everything else is ignored);
* a class-level ``FREEZE_EXEMPT = ("attr", ...)`` tuple names attributes to
  skip -- open handles, caches, debug fields.  ``repro-lint`` rule KEY002
  verifies the names refer to attributes that actually exist.

Cycles are handled structurally: a back-reference freezes as the relative
stack depth of the object it points back to, so isomorphic cyclic graphs
hash equal and freezing always terminates.  Inherently unstable values --
open files, generators, locks, threads -- raise :class:`UnfreezableError`
naming the path at which they were found.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import threading
import types
from typing import Any, Dict, Tuple

import numpy as np

from repro.utils.fingerprint import array_fingerprint, content_fingerprint

FREEZE_EXEMPT_ATTR = "FREEZE_EXEMPT"

_UNFREEZABLE_TYPES: Tuple[type, ...] = (
    io.IOBase,
    types.GeneratorType,
    types.CoroutineType,
    types.AsyncGeneratorType,
    types.FrameType,
    types.TracebackType,
    memoryview,
    threading.Thread,
)
# Lock objects have no public type exported uniformly; detect structurally.
_LOCK_ATTRS = ("acquire", "release", "locked")


def _is_lock_like(obj: Any) -> bool:
    return all(callable(getattr(obj, attr, None)) for attr in _LOCK_ATTRS)


class UnfreezableError(TypeError):
    """The graph contains a value with no stable frozen form."""

    def __init__(self, obj: Any, path: Tuple[str, ...]):
        joined = ".".join(path) or "$"
        super().__init__(
            f"cannot freeze {type(obj).__name__} at {joined}: no stable "
            f"content representation; implement __freeze__() or list the "
            f"attribute in {FREEZE_EXEMPT_ATTR}"
        )
        self.path = path


def _encode(token: Any) -> str:
    """Canonical text of a frozen token tree (tuples become JSON arrays)."""
    return json.dumps(token, separators=(",", ":"), ensure_ascii=True)


def _qualname(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


def freeze(obj: Any) -> Any:
    """The canonical token tree of ``obj`` (nested tuples of strings)."""
    return _freeze(obj, {}, ())


def freeze_fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of :func:`freeze`'s canonical encoding of ``obj``."""
    return hashlib.sha256(_encode(freeze(obj)).encode("utf-8")).hexdigest()


def fingerprint_payload(payload: Any) -> str:
    """Fingerprint ``payload``: JSON-shaped fast path, freezer fallback.

    JSON-encodable payloads keep their historical
    :func:`~repro.utils.fingerprint.content_fingerprint` keys (nothing is
    re-keyed by the freezer's arrival); payloads carrying richer objects --
    the ``TypeError`` path -- are frozen instead of failing.
    """
    try:
        return content_fingerprint(payload)
    except TypeError:
        return freeze_fingerprint(payload)


def _freeze(obj: Any, stack: Dict[int, int], path: Tuple[str, ...]) -> Any:
    # -- leaves (identity-free; no cycle bookkeeping needed) -----------------------
    if obj is None:
        return ("none",)
    if obj is True or obj is False:
        return ("bool", "1" if obj else "0")
    if isinstance(obj, int) and not isinstance(obj, bool):
        return ("int", repr(obj))
    if isinstance(obj, float):
        return ("float", obj.hex())
    if isinstance(obj, complex):
        return ("complex", obj.real.hex(), obj.imag.hex())
    if isinstance(obj, str):
        return ("str", obj)
    if isinstance(obj, (bytes, bytearray)):
        return ("bytes", hashlib.sha256(bytes(obj)).hexdigest())
    if isinstance(obj, np.ndarray):
        return ("ndarray", array_fingerprint(obj))
    if isinstance(obj, np.generic):
        return ("npscalar", str(obj.dtype), _freeze(obj.item(), stack, path))
    if isinstance(obj, type):
        return ("class", _qualname(obj))
    if isinstance(obj, types.ModuleType):
        return ("module", obj.__name__)
    if isinstance(obj, types.BuiltinFunctionType):
        return ("builtin", getattr(obj, "__module__", "") or "", obj.__qualname__)
    if isinstance(obj, _UNFREEZABLE_TYPES) or _is_lock_like(obj):
        raise UnfreezableError(obj, path)

    # -- containers / objects (cycle detection via stack depth) --------------------
    oid = id(obj)
    if oid in stack:
        return ("cycle", repr(len(stack) - stack[oid]))
    stack[oid] = len(stack)
    try:
        if isinstance(obj, dict):
            items = tuple(
                sorted(
                    (
                        (
                            _freeze(key, stack, path + (repr(key),)),
                            _freeze(value, stack, path + (repr(key),)),
                        )
                        for key, value in obj.items()
                    ),
                    key=_encode,
                )
            )
            return ("dict", items)
        if isinstance(obj, (set, frozenset)):
            items = tuple(
                sorted(
                    (_freeze(item, stack, path + ("{}",)) for item in obj),
                    key=_encode,
                )
            )
            return ("set", items)
        if isinstance(obj, (list, tuple)):
            tag = "list" if isinstance(obj, list) else "tuple"
            return (
                tag,
                tuple(
                    _freeze(item, stack, path + (f"[{index}]",))
                    for index, item in enumerate(obj)
                ),
            )
        if isinstance(obj, types.FunctionType):
            return _freeze_function(obj, stack, path)
        if isinstance(obj, types.MethodType):
            return (
                "method",
                obj.__func__.__qualname__,
                _freeze(obj.__self__, stack, path + ("__self__",)),
            )
        custom = getattr(type(obj), "__freeze__", None)
        if custom is not None:
            return (
                "custom",
                _qualname(type(obj)),
                _freeze(obj.__freeze__(), stack, path + ("__freeze__()",)),
            )
        if dataclasses.is_dataclass(obj):
            exempt = _exempt_names(type(obj))
            state = tuple(
                (f.name, _freeze(getattr(obj, f.name), stack, path + (f.name,)))
                for f in sorted(dataclasses.fields(obj), key=lambda f: f.name)
                if f.name not in exempt
            )
            return ("dataclass", _qualname(type(obj)), state)
        return _freeze_object(obj, stack, path)
    finally:
        del stack[oid]


def _exempt_names(cls: type) -> frozenset:
    names = getattr(cls, FREEZE_EXEMPT_ATTR, ())
    return frozenset(str(name) for name in names)


def _freeze_function(
    func: types.FunctionType, stack: Dict[int, int], path: Tuple[str, ...]
) -> Any:
    """Functions: qualified name + bytecode digest + defaults + closure state.

    The bytecode digest distinguishes same-named lambdas in one scope; the
    closure freeze is what makes two instances of the same factory hash
    differently when they closed over different values.
    """
    cells = tuple(
        (
            _freeze(cell.cell_contents, stack, path + (f"closure[{index}]",))
            if _cell_is_set(cell)
            else ("emptycell",)
        )
        for index, cell in enumerate(func.__closure__ or ())
    )
    defaults = _freeze(func.__defaults__, stack, path + ("__defaults__",))
    kwdefaults = _freeze(func.__kwdefaults__, stack, path + ("__kwdefaults__",))
    return (
        "function",
        getattr(func, "__module__", "") or "",
        func.__qualname__,
        hashlib.sha256(func.__code__.co_code).hexdigest(),
        defaults,
        kwdefaults,
        cells,
    )


def _cell_is_set(cell: Any) -> bool:
    try:
        cell.cell_contents
        return True
    except ValueError:
        return False


def _freeze_object(obj: Any, stack: Dict[int, int], path: Tuple[str, ...]) -> Any:
    """Generic objects: class identity plus sorted attribute state."""
    cls = type(obj)
    exempt = _exempt_names(cls)
    state: Dict[str, Any] = {}
    instance_dict = getattr(obj, "__dict__", None)
    slots_seen = False
    if isinstance(instance_dict, dict):
        state.update(instance_dict)
    for klass in cls.__mro__:
        for name in getattr(klass, "__slots__", ()):
            if name in ("__dict__", "__weakref__"):
                continue
            slots_seen = True
            if hasattr(obj, name):
                state[name] = getattr(obj, name)
    if instance_dict is None and not slots_seen and state == {} and cls is not object:
        # No inspectable state at all (C-implemented or otherwise opaque):
        # hashing just the class name would silently equate distinct values.
        raise UnfreezableError(obj, path)
    frozen_state = tuple(
        (name, _freeze(value, stack, path + (name,)))
        for name, value in sorted(state.items())
        if name not in exempt
    )
    return ("object", _qualname(cls), frozen_state)
