""":class:`RemoteStore`: the store protocol spoken to a serve daemon.

The wire format is deliberately thin -- object payloads travel as raw
``application/octet-stream`` bodies (no base64 inflation for multi-megabyte
weight blobs), everything else is JSON::

    GET  /store/<key>          object bytes (404 on miss)
    PUT  /store/<key>          store bytes under their declared key
    HEAD /store/<key>          existence probe
    POST /store/has            {"keys": [...]} -> {"present": {key: bool}}
    GET  /store/refs/<name>    {"name", "key"} (404 on miss)
    PUT  /store/refs/<name>    {"key": <content key>} -> {"ok"}
    GET  /store/stats          the daemon-side LocalStore counters

Every operation is idempotent -- content-addressed puts store the same bytes
under the same name, and the evaluation tier's refs are written with
deterministic values -- so all of them retry on the fleet's shared
jitter-free :class:`~repro.fleet.retry.RetryPolicy`.  Faults split cleanly:
a 404 is a miss (None/False), a connection-level failure or a post-retry
5xx raises :class:`~repro.store.core.StoreUnavailable` (the signal
:class:`~repro.store.tiered.TieredStore` degrades on), any other status is a
:class:`~repro.store.core.StoreError` caller bug.

Reads are verified here too: a payload that does not hash to its key --
corruption on the daemon's disk or in flight -- is reported as a miss, never
returned.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.store.core import (
    KEY_PATTERN,
    StoreError,
    StoreUnavailable,
    object_key,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.retry import RetryPolicy

_OCTET_HEADERS = {"Content-Type": "application/octet-stream"}
_JSON_HEADERS = {"Content-Type": "application/json"}

# Sentinel distinguishing "the daemon answered 404" from a JSON null body.
_MISS = object()


class RemoteStore:
    """Client for the daemon's ``/store/*`` endpoints."""

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        retry: Optional["RetryPolicy"] = None,
    ):
        if retry is None:
            # Imported lazily: repro.fleet's package init reaches the engine,
            # which imports repro.store back -- a top-level import here would
            # make ``import repro.store`` order-dependent.
            from repro.fleet.retry import RetryPolicy

            retry = RetryPolicy()
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry
        self.corrupt_reads = 0

    # -- HTTP plumbing -------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        data: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ):
        """One raw round trip under the retry policy; ``_MISS`` on 404."""

        def attempt() -> bytes:
            request = urllib.request.Request(
                f"{self.base_url}{path}",
                data=data,
                headers=headers or {},
                method=method,
            )
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.read()

        try:
            return self.retry.call(attempt, idempotent=True)
        except urllib.error.HTTPError as error:
            if error.code == 404:
                return _MISS
            if error.code >= 500:
                raise StoreUnavailable(
                    f"store endpoint {method} {path} failed with HTTP "
                    f"{error.code} after retries"
                ) from None
            raise StoreError(
                f"store endpoint {method} {path} rejected the request: "
                f"HTTP {error.code}"
            ) from None
        except (urllib.error.URLError, ConnectionError, TimeoutError, OSError) as error:
            reason = getattr(error, "reason", error)
            raise StoreUnavailable(
                f"store unreachable at {self.base_url}: {reason}"
            ) from None

    # -- objects -------------------------------------------------------------------
    def get(self, key: str) -> Optional[bytes]:
        """Fetch an object; None on miss or when the payload fails verification."""
        raw = self._request("GET", f"/store/{key}")
        if raw is _MISS:
            return None
        if object_key(raw) != key:
            self.corrupt_reads += 1
            return None
        return raw

    def put(self, data: bytes) -> str:
        """Store ``data`` remotely; returns its content key."""
        key = object_key(data)
        self.put_object(key, data)
        return key

    def put_object(self, key: str, data: bytes) -> str:
        self._request("PUT", f"/store/{key}", data=data, headers=_OCTET_HEADERS)
        return key

    def has(self, key: str) -> bool:
        return self._request("HEAD", f"/store/{key}") is not _MISS

    def has_many(self, keys: Iterable[str]) -> Dict[str, bool]:
        """One batched existence probe for many keys."""
        wanted: List[str] = list(keys)
        if not wanted:
            return {}
        raw = self._request(
            "POST",
            "/store/has",
            data=json.dumps({"keys": wanted}).encode("utf-8"),
            headers=_JSON_HEADERS,
        )
        present = json.loads(raw.decode("utf-8")).get("present", {})
        return {key: bool(present.get(key, False)) for key in wanted}

    # -- refs ----------------------------------------------------------------------
    def get_ref(self, name: str) -> Optional[str]:
        raw = self._request("GET", f"/store/refs/{name}")
        if raw is _MISS:
            return None
        value = json.loads(raw.decode("utf-8")).get("key")
        if not isinstance(value, str) or not KEY_PATTERN.match(value):
            return None
        return value

    def set_ref(self, name: str, content_key: str) -> None:
        self._request(
            "PUT",
            f"/store/refs/{name}",
            data=json.dumps({"key": content_key}).encode("utf-8"),
            headers=_JSON_HEADERS,
        )

    # -- stats ---------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        raw = self._request("GET", "/store/stats")
        return json.loads(raw.decode("utf-8"))
