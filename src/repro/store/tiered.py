""":class:`TieredStore`: local-first reads, write-through publication, and
one-way degradation when the remote tier disappears.

The tier order is fixed: reads try the local store, then the remote one (a
remote hit is written back locally, so the *next* read is a disk read);
writes land locally first and are then published to the remote tier.  The
remote side is strictly an accelerator -- the first
:class:`~repro.store.core.StoreUnavailable` flips a permanent ``degraded``
flag, fires the ``on_degraded`` callback exactly once (the engine turns it
into a typed ``store-degraded`` event), and every later operation is served
local-only without touching the network again.  An unreachable daemon
therefore costs one failed round trip per process, never a failed run.

Either side may be absent: a local-only tier is a plain passthrough (how a
shared ``--store-root`` on one host behaves), a remote-only tier keeps the
degradation contract without double-writing payloads the evaluation cache
already persists per run.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional

from repro.store.core import LocalStore, StoreUnavailable, object_key
from repro.store.remote import RemoteStore

# Receives a JSON-encodable payload describing the degradation.
DegradedCallback = Callable[[Dict[str, Any]], None]


class TieredStore:
    """Compose an optional :class:`LocalStore` and :class:`RemoteStore`."""

    def __init__(
        self,
        local: Optional[LocalStore] = None,
        remote: Optional[RemoteStore] = None,
        on_degraded: Optional[DegradedCallback] = None,
    ):
        if local is None and remote is None:
            raise ValueError("a tiered store needs a local or a remote side")
        self.local = local
        self.remote = remote
        self.on_degraded = on_degraded
        self.degraded = False

    # -- degradation ---------------------------------------------------------------
    def _call_remote(self, op: str, call: Callable[[], Any], default: Any) -> Any:
        """Run one remote operation; degrade (once, permanently) on transport loss."""
        if self.remote is None or self.degraded:
            return default
        try:
            return call()
        except StoreUnavailable as error:
            self._degrade(op, error)
            return default

    def _degrade(self, op: str, error: Exception) -> None:
        self.degraded = True
        callback = self.on_degraded
        if callback is not None:
            callback(
                {
                    "op": op,
                    "url": self.remote.base_url if self.remote else None,
                    "error": str(error),
                }
            )

    # -- objects -------------------------------------------------------------------
    def get(self, key: str) -> Optional[bytes]:
        if self.local is not None:
            data = self.local.get(key)
            if data is not None:
                return data
        data = self._call_remote("get", lambda: self.remote.get(key), None)
        if data is not None and self.local is not None:
            # Read-through population: the remote payload is already
            # verified, so the next lookup never leaves this host.
            self.local.put(data)
        return data

    def put(self, data: bytes) -> str:
        key = self.local.put(data) if self.local is not None else object_key(data)
        self._call_remote("put", lambda: self.remote.put_object(key, data), None)
        return key

    def has(self, key: str) -> bool:
        if self.local is not None and self.local.has(key):
            return True
        return bool(self._call_remote("has", lambda: self.remote.has(key), False))

    def has_many(self, keys: Iterable[str]) -> Dict[str, bool]:
        wanted = list(keys)
        present = {key: False for key in wanted}
        if self.local is not None:
            present.update(self.local.has_many(wanted))
        missing = [key for key in wanted if not present[key]]
        if missing:
            remote = self._call_remote(
                "has", lambda: self.remote.has_many(missing), {}
            )
            present.update(remote)
        return present

    # -- refs ----------------------------------------------------------------------
    def get_ref(self, name: str) -> Optional[str]:
        if self.local is not None:
            value = self.local.get_ref(name)
            if value is not None:
                return value
        value = self._call_remote("get_ref", lambda: self.remote.get_ref(name), None)
        if value is not None and self.local is not None:
            self.local.set_ref(name, value)
        return value

    def set_ref(self, name: str, content_key: str) -> None:
        if self.local is not None:
            self.local.set_ref(name, content_key)
        self._call_remote(
            "set_ref", lambda: self.remote.set_ref(name, content_key), None
        )

    # -- plumbing ------------------------------------------------------------------
    def bind_metrics(self, registry) -> None:
        if self.local is not None:
            self.local.bind_metrics(registry)

    def stats(self) -> Dict[str, Any]:
        return {
            "degraded": self.degraded,
            "local": None if self.local is None else self.local.stats(),
            "remote_url": None if self.remote is None else self.remote.base_url,
        }
