"""``repro.store``: a content-addressed artifact store with tiered sharing.

Every artifact the platform memoizes -- evaluation results, trained-weight
archives -- is addressed by the SHA-256 of its bytes, so equal content is
stored once and a read can always verify what it got.  The package has
three layers:

* :class:`LocalStore` -- one directory of sharded ``objects/ab/cdef...``
  files with atomic temp-file + ``os.replace`` writes, hash-verified reads
  (a corrupt object is deleted, never returned), a small named ``refs/``
  namespace mapping cache fingerprints to content keys, and ref-count-aware
  LRU eviction under a configurable byte budget.
* :class:`RemoteStore` -- the same operations spoken over a
  ``repro-search serve`` daemon's ``/store/*`` endpoints, with the fleet's
  deterministic jitter-free :class:`~repro.fleet.retry.RetryPolicy`.
  Transport faults raise :class:`StoreUnavailable`.
* :class:`TieredStore` -- local-first reads with read-through population
  from the remote tier and write-through publication to it.  The first
  unreachable remote call flips the tier into *degraded* (local-only) mode
  for the rest of the process: a dead daemon costs one failed round trip
  and a typed ``store-degraded`` event, never a failed run.

:mod:`repro.store.freeze` is the fingerprint side of the story: a recursive
deterministic freezer that hashes arbitrary object graphs (dicts and sets in
canonical order, ndarrays by content, functions by qualified name + closure)
so evaluation contexts with custom datasets or injected callables can join
the cache key without bespoke ``cache_key()`` code.
"""

from repro.store.core import (
    KEY_PATTERN,
    LocalStore,
    StoreCorruptWrite,
    StoreError,
    StoreUnavailable,
    object_key,
)
from repro.store.freeze import (
    FREEZE_EXEMPT_ATTR,
    UnfreezableError,
    fingerprint_payload,
    freeze,
    freeze_fingerprint,
)
from repro.store.remote import RemoteStore
from repro.store.tiered import TieredStore

__all__ = [
    "KEY_PATTERN",
    "LocalStore",
    "RemoteStore",
    "TieredStore",
    "StoreError",
    "StoreCorruptWrite",
    "StoreUnavailable",
    "object_key",
    "freeze",
    "freeze_fingerprint",
    "fingerprint_payload",
    "FREEZE_EXEMPT_ATTR",
    "UnfreezableError",
]
