"""The content-addressed store core: :class:`LocalStore`.

Layout of one store root::

    <root>/
      objects/ab/cdef...            payload bytes, named by their SHA-256
      refs/12/34ab...               64-hex content key, named by a fingerprint

Objects are immutable by construction -- the name *is* the hash of the
bytes -- which buys three properties the rest of the platform leans on:

* **Dedupe is free.**  Writing equal content twice is a no-op; the zoo's
  weight blobs and the evaluation tier's result payloads share storage
  across runs, hosts and time.
* **Reads are verifiable.**  Every ``get`` re-hashes what it read; a torn
  or bit-rotted object is deleted and reported as a miss so the caller
  recomputes or refetches instead of consuming garbage.
* **Writes are atomic.**  Payloads land in a temp file in the final shard
  directory and are published with ``os.replace``, so a concurrent reader
  (another engine process on the same host, or the daemon's HTTP threads)
  never observes a partial object.

``refs/`` is the tiny mutable namespace on top: a ref maps a *cache
fingerprint* (context + child + fidelity) to the content key of its result
payload.  Keeping the mapping separate from the payload is what lets keyed
lookups coexist with hash-verified content addressing.

Eviction is LRU under an optional byte budget (``max_bytes``), skipping
pinned objects.  Recency is tracked with a monotonic counter, never file
mtimes or wall-clock -- on startup the scan order (sorted keys) seeds the
queue deterministically, so two processes that performed the same operations
evict the same objects.
"""

from __future__ import annotations

import hashlib
import os
import re
import tempfile
import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Iterable, List, Optional

from repro.obs import metrics as obs_metrics

KEY_PATTERN = re.compile(r"^[0-9a-f]{64}$")

OBJECTS_DIR = "objects"
REFS_DIR = "refs"


class StoreError(Exception):
    """A store operation failed for a non-transient reason (caller bug)."""


class StoreCorruptWrite(StoreError):
    """A keyed write's payload does not hash to its declared key."""


class StoreUnavailable(StoreError):
    """The remote store tier cannot be reached (transient transport fault)."""


def object_key(data: bytes) -> str:
    """The content key of a payload: its SHA-256 hex digest."""
    return hashlib.sha256(data).hexdigest()


def _check_key(key: str) -> str:
    if not KEY_PATTERN.match(key or ""):
        raise StoreError(f"not a store key (need 64 lowercase hex): {key!r}")
    return key


class LocalStore:
    """One on-disk content-addressed store root (thread-safe)."""

    def __init__(
        self,
        root: str,
        max_bytes: Optional[int] = None,
        on_corrupt: Optional[Callable[[str, str], None]] = None,
    ):
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive when given")
        self.root = os.path.abspath(root)
        self.max_bytes = max_bytes
        # Called with (key, path) whenever a read fails hash verification.
        self.on_corrupt = on_corrupt
        self._objects_root = os.path.join(self.root, OBJECTS_DIR)
        self._refs_root = os.path.join(self.root, REFS_DIR)
        os.makedirs(self._objects_root, exist_ok=True)
        os.makedirs(self._refs_root, exist_ok=True)
        self._lock = threading.RLock()
        # key -> size, in least-recently-used-first order.
        self._index: "OrderedDict[str, int]" = OrderedDict()
        self._bytes = 0
        self._pins: Dict[str, int] = {}
        self.counters: Dict[str, int] = {
            "get_hit": 0,
            "get_miss": 0,
            "get_corrupt": 0,
            "put_new": 0,
            "put_dup": 0,
            "ref_hit": 0,
            "ref_miss": 0,
            "ref_write": 0,
            "evictions": 0,
        }
        self._scan()
        self.bind_metrics(obs_metrics.get_registry())

    # -- instrumentation -----------------------------------------------------------
    def bind_metrics(self, registry: "obs_metrics.MetricsRegistry") -> None:
        """Point the store's instrumentation at ``registry``."""
        self._m_gets = registry.counter(
            "repro_store_gets_total",
            "Store object reads by outcome",
            labelnames=("result",),
        )
        self._m_puts = registry.counter(
            "repro_store_puts_total",
            "Store object writes by outcome",
            labelnames=("result",),
        )
        self._m_refs = registry.counter(
            "repro_store_refs_total",
            "Store ref operations by outcome",
            labelnames=("result",),
        )
        self._m_evictions = registry.counter(
            "repro_store_evictions_total", "Objects evicted under the byte budget"
        )
        self._m_op_seconds = registry.histogram(
            "repro_store_op_seconds",
            "Store operation latency",
            labelnames=("op",),
        )
        self._m_bytes = registry.gauge(
            "repro_store_bytes", "Bytes held by the store's objects"
        )
        self._m_objects = registry.gauge(
            "repro_store_objects", "Objects held by the store"
        )
        with self._lock:
            self._m_bytes.set(self._bytes)
            self._m_objects.set(len(self._index))

    def _count(self, family: str, counter: str, result: str) -> None:
        self.counters[counter] += 1
        metric = getattr(self, f"_m_{family}", None)
        if metric is not None:
            metric.labels(result=result).inc()

    # -- paths ---------------------------------------------------------------------
    def object_relpath(self, key: str) -> str:
        """Store-root-relative path of an object (``objects/ab/cdef...``)."""
        _check_key(key)
        return os.path.join(OBJECTS_DIR, key[:2], key[2:])

    def object_path(self, key: str) -> str:
        """Absolute on-disk path of an object."""
        return os.path.join(self.root, self.object_relpath(key))

    def _ref_path(self, name: str) -> str:
        _check_key(name)
        return os.path.join(self._refs_root, name[:2], name[2:])

    def _scan(self) -> None:
        """Seed the index from disk, sorted by key (deterministic LRU seed)."""
        found: List[tuple] = []
        for shard in sorted(os.listdir(self._objects_root)):
            shard_dir = os.path.join(self._objects_root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for rest in sorted(os.listdir(shard_dir)):
                key = shard + rest
                if not KEY_PATTERN.match(key):
                    continue
                try:
                    size = os.path.getsize(os.path.join(shard_dir, rest))
                except OSError:
                    continue
                found.append((key, size))
        with self._lock:
            for key, size in found:
                self._index[key] = size
            self._bytes = sum(self._index.values())

    # -- objects -------------------------------------------------------------------
    def put(self, data: bytes) -> str:
        """Store ``data``; returns its content key (idempotent)."""
        return self.put_object(object_key(data), data, _verified=True)

    def put_object(self, key: str, data: bytes, _verified: bool = False) -> str:
        """Store ``data`` under its declared content ``key``.

        Raises :class:`StoreCorruptWrite` when the payload does not hash to
        ``key`` -- the guard that keeps a buggy (or corrupted-in-flight)
        remote write from poisoning the store.
        """
        _check_key(key)
        if not _verified and object_key(data) != key:
            raise StoreCorruptWrite(
                f"payload hashes to {object_key(data)[:12]}..., not the "
                f"declared key {key[:12]}..."
            )
        start = time.perf_counter()
        with self._lock:
            if key in self._index or os.path.exists(self.object_path(key)):
                self._touch(key, len(data))
                self._count("puts", "put_dup", "dup")
                self._observe_op("put", start)
                return key
            path = self.object_path(key)
            shard_dir = os.path.dirname(path)
            os.makedirs(shard_dir, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=shard_dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(data)
                os.replace(tmp, path)
            except BaseException:
                if os.path.exists(tmp):
                    os.remove(tmp)
                raise
            self._index[key] = len(data)
            self._bytes += len(data)
            self._count("puts", "put_new", "new")
            self._evict_over_budget()
            self._note_size()
        self._observe_op("put", start)
        return key

    def get(self, key: str) -> Optional[bytes]:
        """Read an object, verifying its hash; None on miss *or* corruption.

        A payload that no longer hashes to its name is deleted before the
        miss is reported, so the caller's refetch (or recompute) lands in a
        clean slot -- torn local writes and bit rot self-heal.
        """
        _check_key(key)
        start = time.perf_counter()
        path = self.object_path(key)
        with self._lock:
            try:
                with open(path, "rb") as handle:
                    data = handle.read()
            except (FileNotFoundError, NotADirectoryError):
                self._drop(key)
                self._count("gets", "get_miss", "miss")
                self._observe_op("get", start)
                return None
            if object_key(data) != key:
                self._delete_object(key)
                self._count("gets", "get_corrupt", "corrupt")
                self._observe_op("get", start)
                if self.on_corrupt is not None:
                    self.on_corrupt(key, path)
                return None
            self._touch(key, len(data))
            self._count("gets", "get_hit", "hit")
        self._observe_op("get", start)
        return data

    def has(self, key: str) -> bool:
        """True when the object exists (no read, no verification)."""
        _check_key(key)
        with self._lock:
            return key in self._index or os.path.exists(self.object_path(key))

    def has_many(self, keys: Iterable[str]) -> Dict[str, bool]:
        """Batched :meth:`has` (the shape of the daemon's ``POST /store/has``)."""
        return {key: self.has(key) for key in keys}

    def size(self, key: str) -> Optional[int]:
        """Byte size of an object, or None when absent."""
        with self._lock:
            if key in self._index:
                return self._index[key]
            try:
                return os.path.getsize(self.object_path(key))
            except OSError:
                return None

    def delete(self, key: str) -> bool:
        """Remove an object outright; True when something was deleted."""
        _check_key(key)
        with self._lock:
            return self._delete_object(key)

    def keys(self) -> List[str]:
        """Every object key, sorted."""
        with self._lock:
            return sorted(self._index)

    # -- pinning / eviction --------------------------------------------------------
    def pin(self, key: str) -> None:
        """Protect an object from eviction (ref-counted)."""
        with self._lock:
            self._pins[key] = self._pins.get(key, 0) + 1

    def unpin(self, key: str) -> None:
        """Release one :meth:`pin`; unknown/unpinned keys are a no-op."""
        with self._lock:
            count = self._pins.get(key, 0) - 1
            if count > 0:
                self._pins[key] = count
            else:
                self._pins.pop(key, None)
            self._evict_over_budget()
            self._note_size()

    def pinned(self, key: str) -> bool:
        with self._lock:
            return self._pins.get(key, 0) > 0

    def _evict_over_budget(self) -> None:
        """Drop least-recently-used unpinned objects until under budget."""
        if self.max_bytes is None:
            return
        while self._bytes > self.max_bytes:
            victim = next(
                (key for key in self._index if self._pins.get(key, 0) == 0), None
            )
            if victim is None:  # everything left is pinned
                break
            self._delete_object(victim)
            self.counters["evictions"] += 1
            metric = getattr(self, "_m_evictions", None)
            if metric is not None:
                metric.inc()

    # -- refs ----------------------------------------------------------------------
    def set_ref(self, name: str, content_key: str) -> None:
        """Map fingerprint ``name`` to ``content_key`` (atomic overwrite)."""
        _check_key(content_key)
        path = self._ref_path(name)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(content_key + "\n")
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.remove(tmp)
            raise
        self._count("refs", "ref_write", "write")

    def get_ref(self, name: str) -> Optional[str]:
        """The content key ``name`` maps to, or None.

        A ref whose content is not a well-formed key (torn write, manual
        tampering) is deleted and reported as a miss -- same self-healing
        contract as corrupt objects.
        """
        path = self._ref_path(name)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                value = handle.read().strip()
        except (FileNotFoundError, NotADirectoryError):
            self._count("refs", "ref_miss", "miss")
            return None
        if not KEY_PATTERN.match(value):
            try:
                os.remove(path)
            except OSError:
                pass
            self._count("refs", "ref_miss", "miss")
            return None
        self._count("refs", "ref_hit", "hit")
        return value

    # -- stats ---------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """JSON-encodable operation counters and occupancy (daemon ``/store/stats``)."""
        with self._lock:
            return {
                "root": self.root,
                "objects": len(self._index),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "pinned": sum(1 for count in self._pins.values() if count > 0),
                "gets": {
                    "hit": self.counters["get_hit"],
                    "miss": self.counters["get_miss"],
                    "corrupt": self.counters["get_corrupt"],
                },
                "puts": {
                    "new": self.counters["put_new"],
                    "dup": self.counters["put_dup"],
                },
                "refs": {
                    "hit": self.counters["ref_hit"],
                    "miss": self.counters["ref_miss"],
                    "write": self.counters["ref_write"],
                },
                "evictions": self.counters["evictions"],
            }

    # -- internals (call with the lock held) ----------------------------------------
    def _touch(self, key: str, size: int) -> None:
        """Mark ``key`` most-recently-used (admitting cross-process arrivals)."""
        if key not in self._index:
            self._index[key] = size
            self._bytes += size
        self._index.move_to_end(key)
        self._note_size()

    def _drop(self, key: str) -> None:
        """Forget an index entry whose file vanished underneath us."""
        size = self._index.pop(key, None)
        if size is not None:
            self._bytes -= size
            self._note_size()

    def _delete_object(self, key: str) -> bool:
        removed = False
        try:
            os.remove(self.object_path(key))
            removed = True
        except OSError:
            pass
        existed = key in self._index
        self._drop(key)
        return removed or existed

    def _note_size(self) -> None:
        bytes_metric = getattr(self, "_m_bytes", None)
        if bytes_metric is not None:
            bytes_metric.set(self._bytes)
            self._m_objects.set(len(self._index))

    def _observe_op(self, op: str, start: float) -> None:
        metric = getattr(self, "_m_op_seconds", None)
        if metric is not None:
            metric.labels(op=op).observe(time.perf_counter() - start)
