"""Pareto-frontier utilities used by the NAS result analysis (Figures 5/6)."""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def dominates(
    a: Sequence[float],
    b: Sequence[float],
    maximise: Sequence[bool],
) -> bool:
    """Return ``True`` if objective vector ``a`` Pareto-dominates ``b``.

    ``maximise[i]`` selects the direction of objective ``i``; ``a`` dominates
    ``b`` when it is at least as good in every objective and strictly better
    in at least one.
    """
    if len(a) != len(b) or len(a) != len(maximise):
        raise ValueError("objective vectors and directions must have equal length")
    at_least_as_good = True
    strictly_better = False
    for ai, bi, up in zip(a, b, maximise):
        ai_cmp, bi_cmp = (ai, bi) if up else (-ai, -bi)
        if ai_cmp < bi_cmp:
            at_least_as_good = False
            break
        if ai_cmp > bi_cmp:
            strictly_better = True
    return at_least_as_good and strictly_better


def pareto_frontier(
    items: Sequence[T],
    objectives: Callable[[T], Sequence[float]],
    maximise: Sequence[bool],
) -> List[T]:
    """Return the subset of ``items`` that is not dominated by any other item.

    The original order of items is preserved in the returned list.
    """
    vectors = [tuple(objectives(item)) for item in items]
    frontier: List[T] = []
    for i, item in enumerate(items):
        dominated = any(
            dominates(vectors[j], vectors[i], maximise)
            for j in range(len(items))
            if j != i
        )
        if not dominated:
            frontier.append(item)
    return frontier


def pareto_points_2d(
    points: Sequence[Tuple[float, float]],
    maximise_x: bool = True,
    maximise_y: bool = True,
) -> List[Tuple[float, float]]:
    """Convenience wrapper returning the non-dominated 2-D points."""
    return pareto_frontier(
        list(points),
        objectives=lambda p: p,
        maximise=(maximise_x, maximise_y),
    )
