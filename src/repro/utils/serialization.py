"""Serialisation helpers for models and experiment results.

Models are stored as ``.npz`` archives of named parameter arrays plus a JSON
sidecar describing the architecture; experiment results are stored as JSON.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, is_dataclass
from typing import Any, Dict

import numpy as np


def save_state_dict(path: str, state: Dict[str, np.ndarray]) -> None:
    """Save a mapping of parameter names to arrays as a compressed archive."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez_compressed(path, **state)


def load_state_dict(path: str) -> Dict[str, np.ndarray]:
    """Load a parameter mapping previously written by :func:`save_state_dict`."""
    with np.load(path) as archive:
        return {name: archive[name] for name in archive.files}


def _jsonify(value: Any) -> Any:
    if is_dataclass(value) and not isinstance(value, type):
        return _jsonify(asdict(value))
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


def save_json(path: str, payload: Any) -> None:
    """Write ``payload`` (dataclasses and numpy types allowed) as JSON."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(_jsonify(payload), handle, indent=2, sort_keys=True)


def load_json(path: str) -> Any:
    """Read a JSON file previously written by :func:`save_json`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)
