"""Deterministic random-number helpers.

Every stochastic component in the library (weight initialisation, dataset
generation, the NAS controller, data balancing) receives an explicit
``numpy.random.Generator`` so that experiments are reproducible end to end.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def new_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    Accepts an integer seed, an existing generator (returned unchanged), or
    ``None`` for a non-deterministic generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent child generators from one seed.

    The children are statistically independent streams, so components that
    consume a different number of random draws do not perturb each other.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = new_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(seed: SeedLike, salt: int) -> int:
    """Derive a deterministic integer seed from ``seed`` and a ``salt``.

    Useful when a component needs a plain integer (for example to store in a
    result record) rather than a generator object.
    """
    rng = new_rng(None if seed is None else seed)
    if seed is None:
        return int(rng.integers(0, 2**31 - 1))
    base = int(new_rng(seed).integers(0, 2**31 - 1))
    return (base * 1_000_003 + salt * 7919) % (2**31 - 1)
