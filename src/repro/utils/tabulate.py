"""Minimal plain-text table formatting for experiment harnesses.

The experiment modules print rows comparable to the paper's tables; this
helper keeps the formatting consistent without pulling in a dependency.
"""

from __future__ import annotations

from typing import List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render ``rows`` under ``headers`` as an aligned plain-text table."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    str_headers = [str(h) for h in headers]
    for row in str_rows:
        if len(row) != len(str_headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(str_headers)} headers"
            )
    widths = [len(h) for h in str_headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    sep = "-+-".join("-" * w for w in widths)
    lines = [fmt_row(str_headers), sep]
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
