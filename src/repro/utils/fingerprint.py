"""Content-addressed fingerprints.

The engine's evaluation cache memoizes child evaluations by *content*, not by
object identity: two structurally identical architecture descriptors must map
to the same key even when they were produced by different controller samples
(or in different processes).  The helpers here turn any JSON-encodable payload
into a canonical string -- sorted keys, fixed separators, no whitespace
variation -- and hash it with SHA-256, the same idiom ``charmonium.freeze``
uses for function-argument memoization.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.utils.serialization import _jsonify


def canonical_json(payload: Any) -> str:
    """Serialise ``payload`` into a canonical (deterministic) JSON string.

    Dataclasses and numpy scalars/arrays are converted first, dictionary keys
    are sorted, and separators are fixed so that equal payloads always yield
    byte-identical text regardless of insertion order or platform.
    """
    return json.dumps(
        _jsonify(payload), sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def content_fingerprint(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def combine_fingerprints(*fingerprints: str) -> str:
    """Fold several fingerprints into one (order matters)."""
    return hashlib.sha256("|".join(fingerprints).encode("utf-8")).hexdigest()


def array_fingerprint(array: Any) -> str:
    """Cheap fingerprint of a numpy array: shape, dtype and raw bytes."""
    import numpy as np

    arr = np.ascontiguousarray(array)
    digest = hashlib.sha256()
    digest.update(str(arr.shape).encode("utf-8"))
    digest.update(str(arr.dtype).encode("utf-8"))
    digest.update(arr.tobytes())
    return digest.hexdigest()
