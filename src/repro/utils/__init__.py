"""Shared utilities: seeded RNG helpers, Pareto extraction, serialization."""

from repro.utils.rng import new_rng, spawn_rngs
from repro.utils.pareto import pareto_frontier, dominates
from repro.utils.tabulate import format_table
from repro.utils.fingerprint import canonical_json, content_fingerprint

__all__ = [
    "new_rng",
    "spawn_rngs",
    "pareto_frontier",
    "dominates",
    "format_table",
    "canonical_json",
    "content_fingerprint",
]
