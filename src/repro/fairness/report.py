"""Model-level fairness evaluation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.data.dataset import GroupedDataset
from repro.fairness.metrics import group_accuracies, unfairness_from_accuracies
from repro.nn.metrics import accuracy
from repro.nn.module import Module
from repro.nn.trainer import Trainer


@dataclass
class FairnessReport:
    """Accuracy, per-group accuracy and unfairness of one model on one dataset."""

    overall_accuracy: float
    group_accuracy: Dict[str, float]
    unfairness: float

    def accuracy_of(self, group: str) -> float:
        """Accuracy of a specific demographic group."""
        if group not in self.group_accuracy:
            raise KeyError(
                f"unknown group {group!r}; known: {sorted(self.group_accuracy)}"
            )
        return self.group_accuracy[group]

    def fairness_improvement_over(self, baseline: "FairnessReport") -> float:
        """Relative unfairness reduction versus ``baseline`` (positive = fairer).

        Matches the paper's "Fairness Comp." column: a positive value means
        this model's unfairness score is that much lower (better) relative to
        the baseline's.
        """
        if baseline.unfairness == 0:
            return 0.0
        return (baseline.unfairness - self.unfairness) / baseline.unfairness

    def summary(self) -> str:
        groups = ", ".join(
            f"{name}={acc:.2%}" for name, acc in sorted(self.group_accuracy.items())
        )
        return (
            f"accuracy={self.overall_accuracy:.2%} ({groups}), "
            f"unfairness={self.unfairness:.4f}"
        )


def fairness_report_from_predictions(
    predictions: np.ndarray, dataset: GroupedDataset
) -> FairnessReport:
    """Build a :class:`FairnessReport` from pre-computed predictions."""
    overall = accuracy(predictions, dataset.labels)
    per_group = group_accuracies(
        predictions, dataset.labels, dataset.groups, dataset.group_names
    )
    return FairnessReport(
        overall_accuracy=overall,
        group_accuracy=per_group,
        unfairness=unfairness_from_accuracies(per_group, overall),
    )


def evaluate_fairness(
    model: Module,
    dataset: GroupedDataset,
    trainer: Optional[Trainer] = None,
    batch_size: Optional[int] = None,
) -> FairnessReport:
    """Run ``model`` on ``dataset`` and compute accuracy / unfairness.

    ``batch_size=None`` defers to the trainer's configured
    ``inference_batch_size`` and falls back to the historical 64.
    """
    trainer = trainer or Trainer()
    if batch_size is None:
        batch_size = trainer.config.inference_batch_size or 64
    predictions = trainer.predict(model, dataset.images, batch_size)
    return fairness_report_from_predictions(predictions, dataset)
