"""Fairness metrics: per-group accuracy and the paper's unfairness score."""

from repro.fairness.metrics import (
    group_accuracies,
    unfairness_score,
    unfairness_from_accuracies,
    max_gap_unfairness,
)
from repro.fairness.report import FairnessReport, evaluate_fairness

__all__ = [
    "group_accuracies",
    "unfairness_score",
    "unfairness_from_accuracies",
    "max_gap_unfairness",
    "FairnessReport",
    "evaluate_fairness",
]
