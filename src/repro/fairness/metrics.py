"""Unfairness score and per-group accuracy.

The paper defines the unfairness score of a model ``f`` on dataset ``D``
partitioned into groups ``D_g`` as the L1 deviation of group accuracies from
the overall accuracy:

    U(f, D) = sum_g | A(f, D_g) - A(f, D) |

Lower is fairer.  ``max_gap_unfairness`` (the worst-group deviation) is
provided for the metric ablation.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.nn.metrics import accuracy


def group_accuracies(
    predictions: np.ndarray,
    labels: np.ndarray,
    groups: np.ndarray,
    group_names: Sequence[str],
) -> Dict[str, float]:
    """Accuracy of the predictions within each demographic group."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels, dtype=np.int64)
    groups = np.asarray(groups, dtype=np.int64)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    if predictions.shape != labels.shape or labels.shape != groups.shape:
        raise ValueError("predictions, labels and groups must have the same length")
    accuracies: Dict[str, float] = {}
    for group_id, name in enumerate(group_names):
        mask = groups == group_id
        if not mask.any():
            raise ValueError(
                f"group {name!r} has no samples; cannot compute its accuracy"
            )
        accuracies[name] = accuracy(predictions[mask], labels[mask])
    return accuracies


def unfairness_from_accuracies(
    per_group: Dict[str, float], overall: float
) -> float:
    """L1 unfairness score given pre-computed accuracies."""
    if not per_group:
        raise ValueError("per_group accuracies must not be empty")
    return float(sum(abs(acc - overall) for acc in per_group.values()))


def unfairness_score(
    predictions: np.ndarray,
    labels: np.ndarray,
    groups: np.ndarray,
    group_names: Sequence[str],
) -> float:
    """The paper's unfairness score (lower is fairer)."""
    predictions = np.asarray(predictions)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    overall = accuracy(predictions, labels)
    per_group = group_accuracies(predictions, labels, groups, group_names)
    return unfairness_from_accuracies(per_group, overall)


def max_gap_unfairness(
    predictions: np.ndarray,
    labels: np.ndarray,
    groups: np.ndarray,
    group_names: Sequence[str],
) -> float:
    """Worst-group deviation from the overall accuracy (alternative metric)."""
    predictions = np.asarray(predictions)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    overall = accuracy(predictions, labels)
    per_group = group_accuracies(predictions, labels, groups, group_names)
    return float(max(abs(acc - overall) for acc in per_group.values()))
