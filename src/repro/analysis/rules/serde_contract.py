"""SER001 -- serde pairs stay paired, event payloads stay JSON.

Two checks, both guarding the persistence/transport boundary:

* **Pairing** -- a class that defines ``to_dict`` must define ``from_dict``
  (and vice versa).  Checkpoints, the on-disk cache, telemetry lines and
  the run-service HTTP protocol all assume the two are exact inverses; a
  one-way class means some artifact can be written that nothing can read
  back.  A genuinely one-way type (e.g. a report that embeds live objects)
  documents that with an inline suppression, which is what makes the
  exception reviewable.
* **Payload hygiene** -- dict literals passed as the ``payload`` of an
  ``EngineEvent`` (or an ``emit``/``_emit`` helper) must use plain string
  keys and JSON-encodable value expressions.  Payloads go straight through
  ``json.dumps`` onto ``telemetry.jsonl`` and the ``/runs/<id>/events``
  wire: a set literal or bytes value only explodes at emit time, in
  whichever consumer subscribes first.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator, Optional, Tuple

from repro.analysis.findings import ERROR, Finding
from repro.analysis.project import ModuleInfo
from repro.analysis.visitor import Rule

PAIRED = (("to_dict", "from_dict"), ("from_dict", "to_dict"))

# Call targets whose dict-literal payload crosses the JSON boundary, and the
# positional index the payload may arrive at.
_PAYLOAD_CALLS = {"EngineEvent": 2, "_emit": 2, "emit_event": 2}

_NON_JSON_VALUE_TYPES = (
    ast.Set,
    ast.SetComp,
    ast.Lambda,
    ast.GeneratorExp,
)


def _call_leaf(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _payload_dict(node: ast.Call) -> Optional[ast.Dict]:
    """The dict literal this call passes as its event payload, if any."""
    leaf = _call_leaf(node.func)
    if leaf not in _PAYLOAD_CALLS:
        return None
    for keyword in node.keywords:
        if keyword.arg == "payload" and isinstance(keyword.value, ast.Dict):
            return keyword.value
    index = _PAYLOAD_CALLS[leaf]
    if len(node.args) > index and isinstance(node.args[index], ast.Dict):
        return node.args[index]
    return None


def _non_json_entries(
    payload: ast.Dict,
) -> Iterator[Tuple[ast.AST, str]]:
    """(node, problem) pairs for statically-visible JSON violations."""
    for key, value in zip(payload.keys, payload.values):
        if key is None:  # ** expansion: contents not statically visible
            continue
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            yield key, (
                f"payload key {ast.unparse(key)!r} is not a plain string "
                "literal; event payload keys must be JSON object keys"
            )
        if isinstance(value, _NON_JSON_VALUE_TYPES):
            yield value, (
                f"payload value {ast.unparse(value)!r} is not JSON-encodable "
                "(sets/lambdas/generators cannot cross telemetry.jsonl)"
            )
        elif isinstance(value, ast.Constant) and isinstance(
            value.value, (bytes, complex)
        ):
            yield value, (
                f"payload value {value.value!r} is not JSON-encodable; "
                "encode it to str/int/float first"
            )
        elif isinstance(value, ast.Dict):
            yield from _non_json_entries(value)


class SerdeContractRule(Rule):
    """SER001: to_dict/from_dict pairing + JSON event payloads (see docstring)."""

    rule_id = "SER001"
    severity = ERROR
    description = (
        "to_dict/from_dict must come in pairs; event payload dict literals "
        "must be plain JSON (string keys, JSON-encodable values)"
    )
    interests = (ast.ClassDef, ast.Call)

    def visit(self, node: ast.AST, module: ModuleInfo) -> Iterable[Finding]:
        if isinstance(node, ast.ClassDef):
            yield from self._check_pairing(node, module)
        elif isinstance(node, ast.Call):
            yield from self._check_payload(node, module)

    def _check_pairing(
        self, node: ast.ClassDef, module: ModuleInfo
    ) -> Iterable[Finding]:
        methods = {
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for present, missing in PAIRED:
            if present in methods and missing not in methods:
                method = next(
                    stmt
                    for stmt in node.body
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name == present
                )
                yield self.finding(
                    module,
                    method,
                    f"class {node.name} defines {present}() but not "
                    f"{missing}(); serde pairs must be exact inverses (or "
                    "the one-way design needs an inline suppression "
                    "explaining why nothing ever reads this back)",
                )

    def _check_payload(self, node: ast.Call, module: ModuleInfo) -> Iterable[Finding]:
        payload = _payload_dict(node)
        if payload is None:
            return
        for offender, problem in _non_json_entries(payload):
            yield self.finding(module, offender, problem)
