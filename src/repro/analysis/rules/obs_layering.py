"""OBS001 -- observability observes, it never steers.

``repro.obs`` exists to *watch* runs: the platform invariant (PR 6) is that
an instrumented float64 run is bit-for-bit the uninstrumented run, and that
no fingerprint ever depends on whether observability was enabled.  Four
checks enforce the layering from both sides:

1. **No randomness in obs** -- modules under ``repro.obs`` must not call
   any RNG (global-state *or* Generator construction): a layer that draws
   randomness can perturb seeded streams.
2. **Obs never imports fingerprint helpers** -- modules under ``repro.obs``
   must not import ``repro.utils.fingerprint`` (or the evaluation cache):
   observability has no business computing cache keys.
3. **Fingerprint core never reaches obs** (import-graph, transitive) --
   nothing under ``repro.obs`` may be reachable from the fingerprint core
   (``repro.utils.fingerprint``/``repro.utils.serialization``), so a cache
   key can never even accidentally observe instrumentation state.
4. **Fingerprint functions never touch obs names** -- a function named
   ``cache_key``/``context_key``/``_compute_context_key`` must not
   reference any name its module bound from a ``repro.obs`` import.  This
   is deliberately function-grained: modules like the engine legitimately
   *instrument themselves* with obs metrics while their fingerprint methods
   stay obs-free.

First-run verification note (PR 7): check 4 was prototyped against
``repro.engine.engine._compute_context_key`` (a module that imports
``repro.obs.metrics`` heavily) and ``repro.api.spec.RunSpec.cache_key`` --
both verified clean: no obs-bound name is referenced on any fingerprint
path in the current tree, so the rule ships with zero baseline entries.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set, Tuple

from repro.analysis.findings import ERROR, Finding
from repro.analysis.project import ModuleInfo, Project
from repro.analysis.rules.common import AliasMap, canonical_name, collect_import_aliases
from repro.analysis.rules.determinism import classify_rng_call
from repro.analysis.visitor import Rule

OBS_PACKAGE = "repro.obs"

# Modules the obs layer must not import, even indirectly through a re-export.
FORBIDDEN_OBS_IMPORTS: Tuple[str, ...] = (
    "repro.utils.fingerprint",
    "repro.engine.cache",
)

# The fingerprint core: modules whose transitive imports must stay obs-free.
FINGERPRINT_CORE: Tuple[str, ...] = (
    "repro.utils.fingerprint",
    "repro.utils.serialization",
)

# Functions that compute fingerprints, wherever they are defined.
FINGERPRINT_FUNCTIONS = frozenset(
    {"cache_key", "context_key", "_compute_context_key"}
)


def _in_obs(module: ModuleInfo) -> bool:
    return module.in_package(OBS_PACKAGE)


class ObsLayeringRule(Rule):
    """OBS001: the obs layer's non-steering contract (see module docstring)."""

    rule_id = "OBS001"
    severity = ERROR
    description = (
        "repro.obs must not draw randomness or import fingerprint helpers, "
        "and fingerprint code paths must not touch repro.obs"
    )
    interests = (ast.Call, ast.Import, ast.ImportFrom, ast.FunctionDef)

    def __init__(
        self,
        forbidden_obs_imports: Tuple[str, ...] = FORBIDDEN_OBS_IMPORTS,
        fingerprint_core: Tuple[str, ...] = FINGERPRINT_CORE,
    ):
        self.forbidden_obs_imports = forbidden_obs_imports
        self.fingerprint_core = fingerprint_core
        self._aliases: AliasMap = {}
        self._obs_bound: Dict[str, str] = {}  # local name -> obs origin

    def start_module(self, module: ModuleInfo) -> None:
        self._aliases = collect_import_aliases(module.tree)
        self._obs_bound = {
            local: origin
            for local, origin in self._aliases.items()
            if origin == OBS_PACKAGE or origin.startswith(OBS_PACKAGE + ".")
        }

    # -- per-node checks --------------------------------------------------------------
    def visit(self, node: ast.AST, module: ModuleInfo) -> Iterable[Finding]:
        if isinstance(node, ast.Call):
            yield from self._check_obs_rng(node, module)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            yield from self._check_obs_import(node, module)
        elif isinstance(node, ast.FunctionDef):
            yield from self._check_fingerprint_function(node, module)

    def _check_obs_rng(self, node: ast.Call, module: ModuleInfo) -> Iterable[Finding]:
        if not _in_obs(module):
            return
        canonical = canonical_name(node.func, self._aliases)
        message = classify_rng_call(canonical)
        if message is None and canonical is not None:
            # Even Generator *construction* is steering-adjacent inside obs.
            if canonical.startswith("numpy.random."):
                message = (
                    f"{canonical!r} inside repro.obs: observability must not "
                    "construct or consume RNG streams"
                )
        if message is not None:
            yield self.finding(
                module, node, f"obs non-steering violation: {message}"
            )

    def _imported_targets(self, node: ast.AST) -> List[str]:
        targets: List[str] = []
        if isinstance(node, ast.Import):
            targets = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            targets = [node.module] + [
                f"{node.module}.{alias.name}" for alias in node.names
            ]
        return targets

    def _check_obs_import(self, node: ast.AST, module: ModuleInfo) -> Iterable[Finding]:
        if not _in_obs(module):
            return
        matched: Set[str] = set()
        for target in self._imported_targets(node):
            for forbidden in self.forbidden_obs_imports:
                if target == forbidden or target.startswith(forbidden + "."):
                    matched.add(forbidden)
        for forbidden in sorted(matched):
            yield self.finding(
                module,
                node,
                f"repro.obs imports {forbidden!r}: observability must "
                "not touch fingerprint/cache-key helpers",
            )

    def _check_fingerprint_function(
        self, node: ast.FunctionDef, module: ModuleInfo
    ) -> Iterable[Finding]:
        if node.name not in FINGERPRINT_FUNCTIONS or not self._obs_bound:
            return
        for inner in ast.walk(node):
            if isinstance(inner, ast.Name) and inner.id in self._obs_bound:
                yield self.finding(
                    module,
                    inner,
                    f"fingerprint function {node.name}() references "
                    f"{inner.id!r} (bound from "
                    f"{self._obs_bound[inner.id]!r}): cache keys must not "
                    "depend on the observability layer",
                )

    # -- project-level reachability ----------------------------------------------------
    def finish_project(self, project: Project) -> Iterable[Finding]:
        graph = project.graph
        for core in self.fingerprint_core:
            module = project.module(core)
            if module is None:
                continue
            reachable = graph.reachable_from(core)
            offenders = sorted(
                name
                for name in reachable
                if name == OBS_PACKAGE or name.startswith(OBS_PACKAGE + ".")
            )
            for offender in offenders:
                chain = graph.import_chain(core, offender)
                yield self.finding(
                    module,
                    1,
                    f"fingerprint core {core!r} transitively imports "
                    f"{offender!r} (via {' -> '.join(chain)}): cache-key "
                    "computation must stay independent of repro.obs",
                )
