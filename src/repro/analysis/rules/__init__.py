"""The rule pack: this codebase's invariants, one ~standalone module each.

==========  ========  ==============================================================
Rule id     Severity  Invariant
==========  ========  ==============================================================
``DET001``  error     all randomness flows through explicit seeded Generators;
                      no wall-clock reads in deterministic code
``KEY001``  error     every field of a ``cache_key()``-bearing dataclass joins
                      the fingerprint or is explicitly exempted
``KEY002``  error     every ``FREEZE_EXEMPT`` entry names an attribute the
                      class actually declares (no stale exemptions)
``SER001``  error     ``to_dict``/``from_dict`` come in pairs; event payloads
                      are plain JSON
``OBS001``  error     ``repro.obs`` observes but never steers (no RNG, no
                      fingerprint imports, no obs on fingerprint paths)
``THR001``  warning   module-global state mutated on worker-reachable paths
                      holds a lock (heuristic)
``DTY001``  warning   ``repro.nn`` derives dtypes from the policy module, not
                      bare literals
==========  ========  ==============================================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.rules.concurrency import ConcurrencyRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.dtype_policy import DtypePolicyRule
from repro.analysis.rules.key_hygiene import CacheKeyHygieneRule, FreezeExemptRule
from repro.analysis.rules.obs_layering import ObsLayeringRule
from repro.analysis.rules.serde_contract import SerdeContractRule
from repro.analysis.visitor import Rule

RULE_CLASSES = (
    DeterminismRule,
    CacheKeyHygieneRule,
    FreezeExemptRule,
    SerdeContractRule,
    ObsLayeringRule,
    ConcurrencyRule,
    DtypePolicyRule,
)


def default_rules(only: Optional[Sequence[str]] = None) -> List[Rule]:
    """Fresh instances of the full rule pack (or the ``only`` subset of ids)."""
    rules: List[Rule] = [cls() for cls in RULE_CLASSES]
    if only is None:
        return rules
    index = {rule.rule_id: rule for rule in rules}
    unknown = sorted(set(only) - set(index))
    if unknown:
        raise ValueError(
            f"unknown rule id(s) {', '.join(unknown)}; "
            f"available: {', '.join(sorted(index))}"
        )
    return [index[rule_id] for rule_id in only]


def rule_catalog() -> Dict[str, str]:
    """``{rule_id: description}`` of every registered rule."""
    return {cls.rule_id: cls.description for cls in RULE_CLASSES}


__all__ = [
    "RULE_CLASSES",
    "default_rules",
    "rule_catalog",
    "DeterminismRule",
    "CacheKeyHygieneRule",
    "FreezeExemptRule",
    "SerdeContractRule",
    "ObsLayeringRule",
    "ConcurrencyRule",
    "DtypePolicyRule",
]
