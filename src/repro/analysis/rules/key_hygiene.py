"""KEY001/KEY002 -- cache-key and freeze exemption lists cannot rot.

KEY001 -- every dataclass field joins ``cache_key()`` or is exempted.

The evaluation cache memoizes child evaluations by content fingerprint; a
spec field that silently skips the fingerprint means two *different*
computations share a cache entry -- the exact drift PRs 3-4 had to handle
by hand when new spec sections landed.  For every dataclass that defines a
``cache_key()`` method, this rule diffs the field set against the names the
method references and requires each unreferenced field to appear in an
explicit class-level exemption list::

    @dataclass(frozen=True)
    class ArchitectureDescriptor:
        name: str          # a label, not content
        ...
        # Fields deliberately excluded from the fingerprint.
        CACHE_KEY_EXEMPT = ("name", "family")

A field counts as referenced when the method body reads ``self.<field>``,
mentions the field name as a string literal (dict-payload fingerprints), or
delegates to ``self.to_dict()`` / ``dataclasses.asdict(self)`` (which see
every field).  Unknown names in ``CACHE_KEY_EXEMPT`` are errors too, so the
exemption list cannot rot as fields are renamed.

KEY002 -- every ``FREEZE_EXEMPT`` entry names a real attribute.

:func:`repro.store.freeze.freeze` skips the attributes a class lists in
``FREEZE_EXEMPT`` when it fingerprints instance state.  An entry that no
longer matches any attribute -- the field was renamed, the cached statistic
dropped -- is a silent no-op: the exemption the author *meant* stops
applying and the attribute it used to cover starts steering fingerprints
again (or vice versa).  This rule resolves each entry against everything
that can put a name on an instance: dataclass fields, class-level
assignments, method/property names, ``__slots__`` entries and ``self.<name>
= ...`` assignments inside method bodies, and errors on the leftovers.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Set

from repro.analysis.findings import ERROR, Finding
from repro.analysis.project import ModuleInfo
from repro.analysis.visitor import Rule

EXEMPT_ATTR = "CACHE_KEY_EXEMPT"
FREEZE_EXEMPT_ATTR = "FREEZE_EXEMPT"

# Calls inside cache_key() that observe every field of the instance.
_SEES_ALL_METHODS = frozenset({"to_dict", "as_dict", "_asdict"})
_SEES_ALL_FUNCTIONS = frozenset({"asdict", "astuple"})


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _dataclass_fields(node: ast.ClassDef) -> List[str]:
    """Names the dataclass decorator turns into fields (annotated, non-ClassVar)."""
    names: List[str] = []
    for statement in node.body:
        if not isinstance(statement, ast.AnnAssign):
            continue
        if not isinstance(statement.target, ast.Name):
            continue
        annotation = ast.unparse(statement.annotation)
        if "ClassVar" in annotation or "InitVar" in annotation:
            continue
        names.append(statement.target.id)
    return names


def _exempt_fields(
    node: ast.ClassDef, attr: str = EXEMPT_ATTR
) -> Optional[Set[str]]:
    """The ``attr`` exemption tuple/list of the class body, if declared."""
    for statement in node.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets, value = [statement.target], statement.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == attr:
                names: Set[str] = set()
                if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                    for element in value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            names.add(element.value)
                return names
    return None


def _referenced_fields(method: ast.FunctionDef, field_names: Set[str]) -> Set[str]:
    """Field names the method body observes; all of them when it delegates."""
    referenced: Set[str] = set()
    for node in ast.walk(method):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            if node.attr in field_names:
                referenced.add(node.attr)
            if node.attr in _SEES_ALL_METHODS:
                return set(field_names)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            if node.value in field_names:
                referenced.add(node.value)
        elif isinstance(node, ast.Call):
            func = node.func
            leaf = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if leaf in _SEES_ALL_FUNCTIONS and any(
                isinstance(arg, ast.Name) and arg.id == "self" for arg in node.args
            ):
                return set(field_names)
    return referenced


class CacheKeyHygieneRule(Rule):
    """KEY001: dataclass fields vs cache_key() references (see module docstring)."""

    rule_id = "KEY001"
    severity = ERROR
    description = (
        "every field of a cache_key()-bearing dataclass must join the "
        "fingerprint or appear in CACHE_KEY_EXEMPT"
    )
    interests = (ast.ClassDef,)

    def visit(self, node: ast.AST, module: ModuleInfo) -> Iterable[Finding]:
        assert isinstance(node, ast.ClassDef)
        if not _is_dataclass_decorated(node):
            return
        method = next(
            (
                stmt
                for stmt in node.body
                if isinstance(stmt, ast.FunctionDef) and stmt.name == "cache_key"
            ),
            None,
        )
        if method is None:
            return
        field_names = set(_dataclass_fields(node))
        exempt = _exempt_fields(node)
        referenced = _referenced_fields(method, field_names)
        unknown_exempt = sorted((exempt or set()) - field_names)
        if unknown_exempt:
            yield self.finding(
                module,
                node,
                f"{EXEMPT_ATTR} of {node.name} names unknown field(s) "
                f"{', '.join(unknown_exempt)}; remove or fix the stale entries",
            )
        missing = sorted(field_names - referenced - (exempt or set()))
        if missing:
            yield self.finding(
                module,
                method,
                f"cache_key() of {node.name} ignores field(s) "
                f"{', '.join(missing)}; fingerprint them or list them in "
                f"{EXEMPT_ATTR} to mark the exclusion deliberate",
            )


def _declared_attributes(node: ast.ClassDef) -> Set[str]:
    """Every name the class body can put on the class or an instance."""
    names: Set[str] = set(_dataclass_fields(node))
    for statement in node.body:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            names.add(statement.name)
            for inner in ast.walk(statement):
                if (
                    isinstance(inner, ast.Attribute)
                    and isinstance(inner.ctx, ast.Store)
                    and isinstance(inner.value, ast.Name)
                    and inner.value.id == "self"
                ):
                    names.add(inner.attr)
        elif isinstance(statement, ast.Assign):
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(statement, ast.AnnAssign):
            if isinstance(statement.target, ast.Name):
                names.add(statement.target.id)
    # __slots__ entries are instance attributes too.
    for statement in node.body:
        if not isinstance(statement, ast.Assign):
            continue
        if not any(
            isinstance(target, ast.Name) and target.id == "__slots__"
            for target in statement.targets
        ):
            continue
        if isinstance(statement.value, (ast.Tuple, ast.List, ast.Set)):
            for element in statement.value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    names.add(element.value)
    return names


class FreezeExemptRule(Rule):
    """KEY002: FREEZE_EXEMPT entries vs declared attributes (see module docstring)."""

    rule_id = "KEY002"
    severity = ERROR
    description = (
        "every FREEZE_EXEMPT entry must name an attribute the class actually "
        "declares (field, class assignment, method, slot or self.<name>)"
    )
    interests = (ast.ClassDef,)

    def visit(self, node: ast.AST, module: ModuleInfo) -> Iterable[Finding]:
        assert isinstance(node, ast.ClassDef)
        exempt = _exempt_fields(node, FREEZE_EXEMPT_ATTR)
        if not exempt:
            return
        stale = sorted(exempt - _declared_attributes(node))
        if stale:
            yield self.finding(
                module,
                node,
                f"{FREEZE_EXEMPT_ATTR} of {node.name} names unknown "
                f"attribute(s) {', '.join(stale)}; remove or fix the stale "
                "entries so the freeze exemption keeps covering what it "
                "was written for",
            )
