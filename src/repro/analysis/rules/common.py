"""Shared AST helpers for the rule pack: alias-aware call-target resolution.

``import numpy as np`` / ``from datetime import datetime`` style imports
mean the same call spells differently across modules; rules compare against
*canonical* dotted targets (``numpy.random.seed``, ``datetime.datetime.now``)
by resolving the first segment of the spelled name through the module's
import aliases.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

AliasMap = Dict[str, str]  # local name -> canonical dotted origin


def collect_import_aliases(tree: ast.Module) -> AliasMap:
    """Map every imported local name to its canonical dotted origin.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``from datetime import datetime`` -> ``{"datetime": "datetime.datetime"}``;
    ``import time`` -> ``{"time": "time"}``.  Relative imports are skipped
    (they never target stdlib/numpy, which is all the rules resolve).
    """
    aliases: AliasMap = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = origin
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def spelled_name(node: ast.AST) -> Optional[str]:
    """Render a ``Name``/``Attribute`` chain as spelled (``np.random.seed``)."""
    parts = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def canonical_name(node: ast.AST, aliases: AliasMap) -> Optional[str]:
    """The canonical dotted target of a name chain, alias-resolved.

    Returns None for chains not rooted in an import (``rng.random()`` where
    ``rng`` is a local variable resolves to nothing -- exactly right: calls
    on an explicit Generator are the sanctioned idiom).
    """
    spelled = spelled_name(node)
    if spelled is None:
        return None
    head, _, rest = spelled.partition(".")
    origin = aliases.get(head)
    if origin is None:
        return None
    return f"{origin}.{rest}" if rest else origin
