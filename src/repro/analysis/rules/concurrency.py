"""THR001 -- unlocked module-global mutation on concurrency-reachable paths.

The engine evaluates waves on thread/process pools and the run service
executes runs on daemon worker threads, so any module transitively imported
from those entry points can have its functions called concurrently.  This
heuristic, warn-level rule flags *module-level mutable state* that such a
function mutates without holding a lock:

* rebinding a module global (``global X`` + assignment),
* mutating a module-level container in place (``X.append/update/...``,
  ``X[k] = v``).

A mutation lexically inside any ``with`` block is treated as locked (the
project idiom is ``with self._lock:`` / ``with _LOCK:``); everything else
is reported.  Entry points default to the worker-pool and run-service
modules and the reachable set is computed on the project import graph, so
a helper module two imports away from the pool is still covered.

The rule is deliberately a heuristic: it cannot see cross-process isolation
or benign races (an atomic flag flip under the GIL), which is why it warns
rather than errors and why benign sites carry inline suppressions with the
reasoning spelled out.

First-run verification note (PR 7): the rule was run over the whole tree
and surfaced ten sites -- ``repro.obs.metrics.set_enabled`` /
``set_registry``, ``repro.engine.workers._init_process_worker``,
``repro.nn.trainer._trainer_instruments``,
``repro.nn.dtype.set_default_dtype``,
``repro.engine.engine.set_default_engine_config``,
``repro.api.registry._ensure_builtins`` / ``register_strategy`` /
``unregister_strategy`` and ``repro.zoo.registry.register_architecture``.
Each was audited: all are single-name rebinds or dict stores that are
atomic under the GIL with last-write-wins semantics (caches, kill
switches, policy swaps and registrations called from the driving thread)
or per-worker-process initialisation that never races by construction.
Notably ``repro.nn.functional.einsum_cached`` was *not* flagged -- its
path-cache store correctly sits inside ``with _EINSUM_LOCK:``.  No real
locking bug surfaced; every site now carries an inline suppression
stating its reasoning, so any *new* unlocked mutation fails the lint.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Set, Tuple

from repro.analysis.findings import WARNING, Finding
from repro.analysis.project import ModuleInfo, Project
from repro.analysis.visitor import Rule, ancestors

# Modules whose functions run on (or dispatch to) concurrent workers.
ENTRY_MODULES: Tuple[str, ...] = (
    "repro.engine.workers",
    "repro.service.local",
    "repro.service.daemon",
    # The fleet fabric: the supervisor's tables are hit from every daemon
    # request thread, and the agent runs a heartbeat thread beside its work
    # loop.
    "repro.fleet.supervisor",
    "repro.fleet.pool",
    "repro.fleet.agent",
)

# In-place mutators of the builtin containers.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "remove",
        "discard",
        "pop",
        "popitem",
        "clear",
        "setdefault",
        "appendleft",
        "extendleft",
    }
)


def _module_level_names(tree: ast.Module) -> Set[str]:
    """Names assigned at module top level (the rule's notion of global state)."""
    names: Set[str] = set()
    for statement in tree.body:
        targets: List[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
            targets = [statement.target]
        for target in targets:
            if isinstance(target, ast.Name):
                names.add(target.id)
            elif isinstance(target, (ast.Tuple, ast.List)):
                names.update(
                    element.id
                    for element in target.elts
                    if isinstance(element, ast.Name)
                )
    return names


def _inside_with(node: ast.AST, function: ast.AST) -> bool:
    """True when ``node`` sits inside a ``with`` block within ``function``."""
    for ancestor in ancestors(node):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            return True
        if ancestor is function:
            return False
    return False


class ConcurrencyRule(Rule):
    """THR001: unlocked global mutation on worker-reachable paths (heuristic)."""

    rule_id = "THR001"
    severity = WARNING
    description = (
        "module-level mutable state mutated without a lock in code reachable "
        "from worker-pool/daemon entry points (heuristic)"
    )
    interests = (ast.Module,)

    def __init__(self, entry_modules: Tuple[str, ...] = ENTRY_MODULES):
        self.entry_modules = entry_modules
        # (module, finding) candidates, filtered by reachability at the end.
        self._candidates: List[Tuple[str, Finding]] = []

    def visit(self, node: ast.AST, module: ModuleInfo) -> Iterable[Finding]:
        assert isinstance(node, ast.Module)
        module_names = _module_level_names(node)
        if not module_names:
            return ()
        for function in ast.walk(node):
            if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            declared_global: Set[str] = set()
            for statement in self._own_nodes(function):
                if isinstance(statement, ast.Global):
                    declared_global.update(statement.names)
            for inner in self._own_nodes(function):
                name = self._mutated_global(inner, module_names, declared_global)
                if name is None:
                    continue
                if _inside_with(inner, function):
                    continue
                self._candidates.append(
                    (
                        module.name,
                        self.finding(
                            module,
                            inner,
                            f"{function.name}() mutates module-level state "
                            f"{name!r} without holding a lock; it is "
                            "reachable from concurrent worker/daemon entry "
                            "points -- guard it or suppress with the "
                            "reasoning spelled out",
                        ),
                    )
                )
        return ()

    @staticmethod
    def _own_nodes(function: ast.AST) -> Iterable[ast.AST]:
        """The function's nodes excluding nested function bodies.

        Each mutation is attributed to its innermost enclosing function
        only, so a closure is not double-reported against its parent.
        """
        stack = list(ast.iter_child_nodes(function))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    def _mutated_global(
        self, node: ast.AST, module_names: Set[str], declared_global: Set[str]
    ):
        """The module-global name this statement mutates, or None."""
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in declared_global:
                    return target.id
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in module_names
                ):
                    return target.value.id
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATING_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in module_names
            ):
                return func.value.id
        return None

    def finish_project(self, project: Project) -> Iterable[Finding]:
        reachable = project.graph.reachable_from(*self.entry_modules)
        for module_name, finding in self._candidates:
            if module_name in reachable:
                yield finding
        self._candidates = []
