"""DET001 -- no legacy global-state RNG or wall-clock in deterministic code.

Bit-for-bit checkpoint/resume (and the content-addressed evaluation cache)
requires every random draw to flow through an explicitly threaded
``numpy.random.Generator`` (see :mod:`repro.utils.rng`) and every result to
be independent of when it was computed.  This rule bans:

* the legacy numpy global-state API (``np.random.seed/rand/choice/...``) --
  anything under ``numpy.random`` except the Generator-construction entry
  points (``default_rng``, ``Generator``, bit generators, ``SeedSequence``),
* the stdlib ``random`` module (its module-level functions *and*
  ``random.Random`` instances -- the project idiom is numpy Generators),
* wall-clock reads whose value could leak into results: ``time.time()``,
  ``datetime.now/utcnow/today()``, ``date.today()``.  Monotonic duration
  clocks (``time.perf_counter``, ``time.monotonic``) are fine: they measure
  how long things took, which telemetry reports but results never contain.

Wall-clock calls are allowed in the modules whose *job* is timestamps --
the observability layer, the run-service lifecycle records, and the serving
layer's request telemetry (see ``WALLCLOCK_ALLOWED_PREFIXES``; promotion
artifacts themselves stay wall-clock-free -- see the audit note at the
allowlist).  Anything else needs an inline
``# repro-lint: disable=DET001 -- why`` with a justification.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Tuple

from repro.analysis.findings import ERROR, Finding
from repro.analysis.project import ModuleInfo
from repro.analysis.rules.common import AliasMap, canonical_name, collect_import_aliases
from repro.analysis.visitor import Rule

# numpy.random attributes that *construct* seeded generators (allowed).
GENERATOR_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "MT19937",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
    }
)

# Canonical wall-clock call targets whose return value is nondeterministic.
WALLCLOCK_TARGETS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

# Module-name prefixes where wall-clock timestamps are the module's job:
# repro.obs stamps spans/events, repro.service stamps lifecycle records
# (created_at/finished_at in status.json).  Neither feeds a computation.
#
# Audit note (repro.serving, added with the serving PR): the micro-batcher
# and load paths use only monotonic clocks for flush deadlines, which DET001
# allows everywhere; the allowlist entry covers request-log style telemetry
# only.  Promotion artifacts (manifests, weights blobs, report cards) are
# wall-clock-free by construction -- the zip writer pins member timestamps
# to the DOS epoch and versions derive from content hashes -- so re-promoting
# the same run yields byte-identical zoo entries regardless of this entry.
#
# Audit note (repro.fleet, added with the fleet PR): every supervision
# deadline -- lease expiry, heartbeat timeouts, retry backoff -- runs on the
# monotonic clock, which DET001 allows everywhere.  Wall clock appears only
# in agent-status payloads (``registered_at`` on GET /agents), display-only
# link-state telemetry that never reaches a task payload or result; task
# blobs are pickled verbatim and results round-trip untouched, so fleet
# scheduling cannot steer what a wave computes.
WALLCLOCK_ALLOWED_PREFIXES: Tuple[str, ...] = (
    "repro.obs",
    "repro.service",
    "repro.serving",
    "repro.fleet",
)

# Module-name prefixes exempt from the RNG ban.  Empty on purpose: even
# repro.utils.rng only *constructs* Generators, which is already allowed.
RNG_ALLOWED_PREFIXES: Tuple[str, ...] = ()


def classify_rng_call(canonical: Optional[str]) -> Optional[str]:
    """A violation message for a canonical call target, or None if clean.

    Shared with OBS001, which bans RNG inside ``repro.obs`` regardless of
    this rule's allowlist.
    """
    if canonical is None:
        return None
    if canonical.startswith("numpy.random."):
        leaf = canonical.rsplit(".", 1)[1]
        if leaf not in GENERATOR_CONSTRUCTORS:
            return (
                f"call to legacy global-state RNG {canonical!r}; thread an "
                "explicit numpy.random.Generator (repro.utils.rng.new_rng) "
                "instead"
            )
        return None
    if canonical == "random" or canonical.startswith("random."):
        return (
            f"call into the stdlib 'random' module ({canonical!r}); the "
            "project threads explicit numpy.random.Generator streams"
        )
    return None


def classify_wallclock_call(canonical: Optional[str]) -> Optional[str]:
    """A violation message for a wall-clock call target, or None if clean."""
    if canonical in WALLCLOCK_TARGETS:
        return (
            f"wall-clock read {canonical!r} in deterministic code; results "
            "must not depend on when they were computed (use "
            "time.perf_counter for durations, or move timestamps to the "
            "obs/service layers)"
        )
    return None


def _allowed(module_name: str, prefixes: Tuple[str, ...]) -> bool:
    return any(
        module_name == prefix or module_name.startswith(prefix + ".")
        for prefix in prefixes
    )


class DeterminismRule(Rule):
    """DET001: ban global-state RNG and wall-clock reads (see module docstring)."""

    rule_id = "DET001"
    severity = ERROR
    description = (
        "no legacy global-state RNG (np.random.*, random.*) or wall-clock "
        "(time.time, datetime.now) outside the obs/service allowlist"
    )
    interests = (ast.Call,)

    def __init__(
        self,
        wallclock_allowed: Tuple[str, ...] = WALLCLOCK_ALLOWED_PREFIXES,
        rng_allowed: Tuple[str, ...] = RNG_ALLOWED_PREFIXES,
    ):
        self.wallclock_allowed = wallclock_allowed
        self.rng_allowed = rng_allowed
        self._aliases: AliasMap = {}

    def start_module(self, module: ModuleInfo) -> None:
        self._aliases = collect_import_aliases(module.tree)

    def visit(self, node: ast.AST, module: ModuleInfo) -> Iterable[Finding]:
        assert isinstance(node, ast.Call)
        canonical = canonical_name(node.func, self._aliases)
        if canonical is None:
            return
        if not _allowed(module.name, self.rng_allowed):
            message = classify_rng_call(canonical)
            if message is not None:
                yield self.finding(module, node, message)
                return
        if not _allowed(module.name, self.wallclock_allowed):
            message = classify_wallclock_call(canonical)
            if message is not None:
                yield self.finding(module, node, message)
