"""DTY001 -- no bare float dtype literals in the NN hot paths.

PR 4 made precision a *policy*: :mod:`repro.nn.dtype` is the single source
of truth for what dtype freshly created NN state uses (float64 = bit-for-bit
seed parity, float32 = the fast path), and every kernel derives its dtype
from its inputs or from ``resolve_dtype()``.  A bare ``np.float32`` /
``np.float64`` used to *construct or cast* state inside ``repro.nn``
silently pins one code path to one precision and splits the stack.

The rule flags ``np.float32``/``np.float64`` attribute references in
``repro.nn`` modules **except**:

* the policy module itself (``repro.nn.dtype``), which must name concrete
  dtypes to define the policy,
* comparisons (``x.dtype == np.float32``) -- *checking* a dtype to pick a
  fast path is reading the policy, not setting it.

First-run verification note (PR 7): the prototype found zero violations in
``repro.nn`` -- the only literal in the package hot paths is the float32
stride-1 fast-path *comparison* in ``repro.nn.layers.conv``, which is
exactly the sanctioned read-only form.  The package is verified clean; the
rule exists so it stays that way.
"""

from __future__ import annotations

import ast
from typing import Iterable, Tuple

from repro.analysis.findings import WARNING, Finding
from repro.analysis.project import ModuleInfo
from repro.analysis.rules.common import canonical_name, collect_import_aliases
from repro.analysis.visitor import Rule, ancestors

NN_PACKAGE = "repro.nn"
POLICY_MODULE = "repro.nn.dtype"

DTYPE_LITERALS = frozenset({"numpy.float32", "numpy.float64"})


class DtypePolicyRule(Rule):
    """DTY001: bare np.float32/np.float64 in repro.nn (see module docstring)."""

    rule_id = "DTY001"
    severity = WARNING
    description = (
        "bare np.float32/np.float64 literals in repro.nn must go through "
        "the repro.nn.dtype policy (comparisons are fine)"
    )
    interests = (ast.Attribute,)

    def __init__(
        self, package: str = NN_PACKAGE, policy_module: str = POLICY_MODULE
    ):
        self.package = package
        self.policy_module = policy_module
        self._aliases = {}

    def start_module(self, module: ModuleInfo) -> None:
        self._aliases = collect_import_aliases(module.tree)

    def visit(self, node: ast.AST, module: ModuleInfo) -> Iterable[Finding]:
        assert isinstance(node, ast.Attribute)
        if not module.in_package(self.package) or module.name == self.policy_module:
            return
        canonical = canonical_name(node, self._aliases)
        if canonical not in DTYPE_LITERALS:
            return
        for ancestor in ancestors(node):
            if isinstance(ancestor, ast.Compare):
                return  # dtype *check* (fast-path dispatch), not construction
            if isinstance(ancestor, (ast.stmt,)):
                break
        leaf = canonical.rsplit(".", 1)[1]
        yield self.finding(
            module,
            node,
            f"bare np.{leaf} literal in {module.name}; derive the dtype from "
            "the input array or repro.nn.dtype.resolve_dtype() so the "
            "precision policy stays in one place",
        )
