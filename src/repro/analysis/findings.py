"""Finding records: what a rule reports and how findings are identified.

A :class:`Finding` is one rule violation at one source location.  Findings
carry a *baseline key* -- ``(rule, path, message)``, deliberately excluding
the line number -- so a grandfathered finding keeps matching its baseline
entry while unrelated edits move it around the file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

# Severities, ordered: errors gate CI, warnings are heuristics that still
# fail the build unless suppressed or baselined (the linter ships enforcing).
ERROR = "error"
WARNING = "warning"
SEVERITIES = (ERROR, WARNING)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: str
    path: str  # as given to the walker (repo-relative in CI)
    line: int  # 1-based
    col: int  # 0-based, ast convention
    message: str

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"severity must be one of {SEVERITIES}, got {self.severity!r}"
            )

    @property
    def baseline_key(self) -> Tuple[str, str, str]:
        """Line-free identity used to match baseline entries across edits."""
        return (self.rule_id, self.path, self.message)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule_id,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Finding":
        return cls(
            rule_id=str(payload["rule"]),
            severity=str(payload["severity"]),
            path=str(payload["path"]),
            line=int(payload["line"]),
            col=int(payload.get("col", 0)),
            message=str(payload["message"]),
        )

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def render(self) -> str:
        """One-line human-readable form (``path:line:col: SEV RULE message``)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity} {self.rule_id} {self.message}"
        )
