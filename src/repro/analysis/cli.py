"""The ``repro-lint`` command line (also ``python -m repro.analysis``).

Typical invocations::

    repro-lint src                        # lint, text report, exit 1 on findings
    repro-lint src --format json          # CI artifact / annotation input
    repro-lint src --rules DET001,KEY001  # a subset of the pack
    repro-lint src --write-baseline       # grandfather the current findings
    repro-lint --list-rules               # the rule reference table

Exit codes: 0 clean (every finding suppressed or baselined), 1 findings,
2 usage/configuration errors.  A stale baseline entry (nothing matches it
any more) is also a failure -- the baseline may only shrink deliberately.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    find_default_baseline,
)
from repro.analysis.findings import Finding
from repro.analysis.project import load_modules
from repro.analysis.reporting import FORMATS, RENDERERS
from repro.analysis.rules import default_rules, rule_catalog
from repro.analysis.visitor import RuleDriver, apply_suppressions


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST invariant analyzer for the repro codebase: determinism, "
            "cache-key hygiene, serde contracts, obs layering, concurrency "
            "and dtype policy."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        help="report format (default: text; json is the CI artifact)",
    )
    parser.add_argument(
        "--output",
        help="write the report to this file instead of stdout",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: the full pack)",
    )
    parser.add_argument(
        "--baseline",
        help=(
            f"baseline file (default: the nearest {DEFAULT_BASELINE_NAME} "
            "walking up from the current directory)"
        ),
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report every finding)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule reference (id, severity, invariant) and exit",
    )
    return parser


def _list_rules() -> str:
    catalog = rule_catalog()
    severities = {
        rule.rule_id: rule.severity for rule in default_rules()
    }
    width = max(len(rule_id) for rule_id in catalog)
    lines = [
        f"{rule_id:<{width}}  {severities[rule_id]:<8}  {description}"
        for rule_id, description in sorted(catalog.items())
    ]
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    try:
        only = (
            [rule_id.strip() for rule_id in args.rules.split(",") if rule_id.strip()]
            if args.rules
            else None
        )
        rules = default_rules(only)
    except ValueError as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 2

    parse_errors: List[Finding] = []
    try:
        modules = load_modules(args.paths, errors=parse_errors)
    except FileNotFoundError as error:
        print(f"repro-lint: {error}", file=sys.stderr)
        return 2

    findings = RuleDriver(rules).run(modules)
    findings = sorted(findings + parse_errors, key=Finding.sort_key)
    kept, suppressed = apply_suppressions(findings, modules)

    baseline_path = args.baseline or find_default_baseline()
    baseline = Baseline.empty()
    if not args.no_baseline and not args.write_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except FileNotFoundError:
            pass
        except ValueError as error:
            print(f"repro-lint: {error}", file=sys.stderr)
            return 2

    if args.write_baseline:
        previous = Baseline.empty()
        try:
            previous = Baseline.load(baseline_path)
        except (FileNotFoundError, ValueError):
            pass
        Baseline.from_findings(kept, previous=previous).save(baseline_path)
        print(
            f"repro-lint: wrote {len(kept)} baseline entr"
            f"{'y' if len(kept) == 1 else 'ies'} to {baseline_path}"
        )
        return 0

    new, baselined, stale = baseline.split(kept)

    report = RENDERERS[args.format](new, suppressed, baselined, len(modules))
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        if args.format != "text":
            # Keep the terminal summary even when the artifact goes to a file.
            print(RENDERERS["text"](new, suppressed, baselined, len(modules)))
    else:
        print(report)

    exit_code = 0
    if new:
        exit_code = 1
    if stale:
        for rule_id, path, message in stale:
            print(
                f"repro-lint: stale baseline entry (nothing matches it): "
                f"{rule_id} {path}: {message}",
                file=sys.stderr,
            )
        print(
            f"repro-lint: {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'}; rerun with "
            "--write-baseline after reviewing",
            file=sys.stderr,
        )
        exit_code = max(exit_code, 1)
    return exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
