"""Reporters: human-readable text, machine-readable JSON, CI annotations.

* ``text`` -- grouped by file, one finding per line, summary footer.
* ``json`` -- one document with a summary block and every finding
  (including suppressed/baselined ones, flagged as such) -- the CI artifact.
* ``github`` -- GitHub Actions workflow commands (``::error file=...``),
  which the Actions runner turns into inline PR annotations.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.analysis.findings import ERROR, Finding

REPORT_VERSION = 1
FORMATS = ("text", "json", "github")


def _summary(
    new: Sequence[Finding],
    suppressed: Sequence[Finding],
    baselined: Sequence[Finding],
    files_analyzed: int,
) -> Dict[str, Any]:
    return {
        "files_analyzed": files_analyzed,
        "findings": len(new),
        "errors": sum(1 for f in new if f.severity == ERROR),
        "warnings": sum(1 for f in new if f.severity != ERROR),
        "suppressed": len(suppressed),
        "baselined": len(baselined),
    }


def render_text(
    new: Sequence[Finding],
    suppressed: Sequence[Finding],
    baselined: Sequence[Finding],
    files_analyzed: int,
) -> str:
    lines: List[str] = []
    current_path = None
    for finding in new:
        if finding.path != current_path:
            if lines:
                lines.append("")
            lines.append(finding.path)
            current_path = finding.path
        lines.append(
            f"  {finding.line}:{finding.col}: {finding.severity} "
            f"{finding.rule_id} {finding.message}"
        )
    if lines:
        lines.append("")
    summary = _summary(new, suppressed, baselined, files_analyzed)
    verdict = "clean" if not new else f"{summary['findings']} finding(s)"
    lines.append(
        f"repro-lint: {verdict} in {files_analyzed} file(s) "
        f"({summary['errors']} error(s), {summary['warnings']} warning(s), "
        f"{summary['suppressed']} suppressed, {summary['baselined']} baselined)"
    )
    return "\n".join(lines)


def render_json(
    new: Sequence[Finding],
    suppressed: Sequence[Finding],
    baselined: Sequence[Finding],
    files_analyzed: int,
) -> str:
    def rows(findings: Sequence[Finding], status: str) -> List[Dict[str, Any]]:
        return [dict(f.to_dict(), status=status) for f in findings]

    document = {
        "version": REPORT_VERSION,
        "summary": _summary(new, suppressed, baselined, files_analyzed),
        "findings": (
            rows(new, "new")
            + rows(baselined, "baselined")
            + rows(suppressed, "suppressed")
        ),
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render_github(
    new: Sequence[Finding],
    suppressed: Sequence[Finding],
    baselined: Sequence[Finding],
    files_analyzed: int,
) -> str:
    lines = [
        (
            f"::{'error' if f.severity == ERROR else 'warning'} "
            f"file={f.path},line={f.line},col={f.col},"
            f"title={f.rule_id}::{f.message}"
        )
        for f in new
    ]
    summary = _summary(new, suppressed, baselined, files_analyzed)
    lines.append(
        f"repro-lint: {summary['findings']} finding(s) in "
        f"{files_analyzed} file(s)"
    )
    return "\n".join(lines)


RENDERERS = {"text": render_text, "json": render_json, "github": render_github}
