"""The rule protocol and the single-pass dispatching AST visitor.

Every rule declares the node types it wants (``interests``); the driver
walks each module's AST exactly once, dispatching each node to the rules
interested in its type, then gives every rule a per-module and a
per-project wrap-up hook.  Rules therefore scale O(nodes), not
O(nodes x rules), and project-level rules (import layering, reachability)
see the full :class:`~repro.analysis.project.Project` after the walk.

During the walk every node gets a ``parent`` backlink (``_repro_parent``),
so rules can inspect context (e.g. "is this ``np.float32`` a comparator or
a dtype argument?") without maintaining their own stacks.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

from repro.analysis.findings import ERROR, Finding
from repro.analysis.imports import build_import_graph
from repro.analysis.project import ModuleInfo, Project

PARENT_ATTR = "_repro_parent"


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    """The parent backlink installed by the driver walk (None at the root)."""
    return getattr(node, PARENT_ATTR, None)


def ancestors(node: ast.AST) -> Iterator[ast.AST]:
    """Parents from the immediate one up to the module root."""
    current = parent_of(node)
    while current is not None:
        yield current
        current = parent_of(current)


class Rule:
    """Base class for all lint rules.

    Subclasses set ``rule_id``/``severity``/``description``/``interests``
    and override any of the three hooks.  All hooks return (or yield) an
    iterable of :class:`Finding`; state between hooks lives on the rule
    instance -- one instance sees the whole run, module by module.
    """

    rule_id: str = "RULE000"
    severity: str = ERROR
    description: str = ""
    interests: Tuple[Type[ast.AST], ...] = ()

    def start_module(self, module: ModuleInfo) -> None:
        """Called before the walk of each module."""

    def visit(self, node: ast.AST, module: ModuleInfo) -> Iterable[Finding]:
        """Called for each node whose type is in ``interests``."""
        return ()

    def finish_module(self, module: ModuleInfo) -> Iterable[Finding]:
        """Called after the walk of each module."""
        return ()

    def finish_project(self, project: Project) -> Iterable[Finding]:
        """Called once after every module has been walked."""
        return ()

    # -- helper ----------------------------------------------------------------------
    def finding(
        self, module: ModuleInfo, node_or_line, message: str
    ) -> Finding:
        """Build a finding for this rule at an AST node (or a bare line number)."""
        if isinstance(node_or_line, int):
            line, col = node_or_line, 0
        else:
            line = getattr(node_or_line, "lineno", 1)
            col = getattr(node_or_line, "col_offset", 0)
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=module.path,
            line=line,
            col=col,
            message=message,
        )


class RuleDriver:
    """Runs a rule pack over parsed modules in one AST pass per module."""

    def __init__(self, rules: Sequence[Rule]):
        self.rules = list(rules)
        ids = [rule.rule_id for rule in self.rules]
        if len(ids) != len(set(ids)):
            raise ValueError(f"duplicate rule ids in pack: {sorted(ids)}")
        self._dispatch: Dict[Type[ast.AST], List[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.interests:
                self._dispatch.setdefault(node_type, []).append(rule)

    def _walk(self, module: ModuleInfo) -> Iterator[Finding]:
        # Backlinks first, for the whole tree: rules dispatched on shallow
        # nodes (e.g. the Module itself) inspect arbitrarily deep context.
        for node in ast.walk(module.tree):
            for child in ast.iter_child_nodes(node):
                setattr(child, PARENT_ATTR, node)
        for node in ast.walk(module.tree):
            for rule in self._dispatch.get(type(node), ()):
                yield from rule.visit(node, module)

    def run(self, modules: Sequence[ModuleInfo]) -> List[Finding]:
        """All findings of the pack over ``modules`` (suppressions NOT applied)."""
        findings: List[Finding] = []
        for module in modules:
            for rule in self.rules:
                rule.start_module(module)
            findings.extend(self._walk(module))
            for rule in self.rules:
                findings.extend(rule.finish_module(module))
        project = Project(modules=list(modules), graph=build_import_graph(modules))
        for rule in self.rules:
            findings.extend(rule.finish_project(project))
        findings.sort(key=Finding.sort_key)
        return findings


def apply_suppressions(
    findings: Iterable[Finding], modules: Sequence[ModuleInfo]
) -> Tuple[List[Finding], List[Finding]]:
    """Split findings into (kept, suppressed) using the modules' inline directives."""
    by_path = {module.path: module.suppressions for module in modules}
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in findings:
        index = by_path.get(finding.path)
        if index is not None and index.is_suppressed(finding.rule_id, finding.line):
            suppressed.append(finding)
        else:
            kept.append(finding)
    return kept, suppressed
