"""Cross-module import graph over the analyzed project.

The graph keeps only edges *into the analyzed package* (``repro.*`` by
default): third-party and stdlib imports are recorded per module as plain
top-level names (so rules can ask "does this module import ``random``?")
but do not become graph nodes.  ``from repro.a import b`` resolves ``b``
against the known module set -- if ``repro.a.b`` is an analyzed module the
edge targets it, otherwise the edge targets ``repro.a`` (``b`` is then a
name defined in it).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.analysis.project import PACKAGE_ANCHOR, ModuleInfo


class ImportGraph:
    """Directed imports between analyzed modules, plus external import sets."""

    def __init__(self, modules: Sequence[ModuleInfo], anchor: str = PACKAGE_ANCHOR):
        self.anchor = anchor
        self._known: Set[str] = {module.name for module in modules}
        # module name -> analyzed modules it imports (directly)
        self.edges: Dict[str, Set[str]] = {module.name: set() for module in modules}
        # module name -> top-level external names it imports ("random", "time")
        self.external: Dict[str, Set[str]] = {module.name: set() for module in modules}
        # module name -> [(imported module, lineno)] for located findings
        self.edge_sites: Dict[str, List[Tuple[str, int]]] = {
            module.name: [] for module in modules
        }
        for module in modules:
            self._scan(module)

    # -- construction ----------------------------------------------------------------
    def _resolve(self, dotted: str) -> str:
        """Collapse a dotted import target onto a known module (longest prefix)."""
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self._known:
                return candidate
        return dotted

    def _add_edge(self, module: ModuleInfo, dotted: str, lineno: int) -> None:
        if dotted == self.anchor or dotted.startswith(self.anchor + "."):
            target = self._resolve(dotted)
            if target != module.name:
                self.edges[module.name].add(target)
                self.edge_sites[module.name].append((target, lineno))
        else:
            self.external[module.name].add(dotted.split(".")[0])

    def _scan(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self._add_edge(module, alias.name, node.lineno)
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import: resolve against this module
                    base_parts = module.name.split(".")
                    # level=1 strips the module's own name, each extra level
                    # strips one more package.
                    base_parts = base_parts[: len(base_parts) - node.level]
                    base = ".".join(base_parts)
                elif node.module:
                    base = node.module
                else:
                    continue
                if not base:
                    continue
                if node.module is None and node.level:
                    # "from . import x": each name is a candidate submodule.
                    for alias in node.names:
                        self._add_edge(module, f"{base}.{alias.name}", node.lineno)
                    continue
                if base == self.anchor or base.startswith(self.anchor + "."):
                    for alias in node.names:
                        self._add_edge(module, f"{base}.{alias.name}", node.lineno)
                else:
                    self._add_edge(module, base, node.lineno)

    # -- queries ---------------------------------------------------------------------
    def imports_of(self, name: str) -> Set[str]:
        """Analyzed modules ``name`` imports directly."""
        return set(self.edges.get(name, ()))

    def imports_external(self, name: str, top_level: str) -> bool:
        """True when module ``name`` imports the external top-level package."""
        return top_level in self.external.get(name, ())

    def reachable_from(self, *roots: str) -> Set[str]:
        """Modules transitively imported by ``roots`` (roots included)."""
        seen: Set[str] = set()
        stack = [root for root in roots if root in self.edges]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.edges.get(current, ()))
        return seen

    def importers_of(self, name: str) -> Set[str]:
        """Modules with a direct edge to ``name``."""
        return {source for source, targets in self.edges.items() if name in targets}

    def import_chain(self, source: str, target: str) -> List[str]:
        """One shortest ``source -> ... -> target`` path, empty when unreachable."""
        if source not in self.edges:
            return []
        frontier = [[source]]
        seen = {source}
        while frontier:
            next_frontier: List[List[str]] = []
            for path in frontier:
                for neighbour in sorted(self.edges.get(path[-1], ())):
                    if neighbour == target:
                        return path + [neighbour]
                    if neighbour not in seen:
                        seen.add(neighbour)
                        next_frontier.append(path + [neighbour])
            frontier = next_frontier
        return []


def build_import_graph(modules: Iterable[ModuleInfo]) -> ImportGraph:
    return ImportGraph(list(modules))
