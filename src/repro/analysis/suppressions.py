"""Inline suppression comments.

Two forms, both carrying an optional justification after ``--``:

* ``# repro-lint: disable=RULE1,RULE2 -- why`` on a source line suppresses
  those rules for findings reported *on that line*,
* ``# repro-lint: disable-file=RULE1,RULE2 -- why`` anywhere in a file
  suppresses those rules for the whole file.

``disable=all`` (or ``disable-file=all``) suppresses every rule.  The parser
is line-based on raw source text: a suppression inside a string literal
would count, which is acceptable for a project linter (and is exactly how
flake8's ``# noqa`` behaves).
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List

SUPPRESS_ALL = "all"

_DIRECTIVE_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+?)(?:\s*--.*)?$"
)


class SuppressionIndex:
    """Which rules are suppressed on which lines of one file."""

    def __init__(self, lines: List[str]):
        self._by_line: Dict[int, FrozenSet[str]] = {}
        self._file_wide: FrozenSet[str] = frozenset()
        for lineno, text in enumerate(lines, start=1):
            if "repro-lint" not in text:
                continue
            match = _DIRECTIVE_RE.search(text)
            if match is None:
                continue
            rules = frozenset(
                part.strip() for part in match.group("rules").split(",") if part.strip()
            )
            if not rules:
                continue
            if match.group("scope") == "disable-file":
                self._file_wide = self._file_wide | rules
            else:
                self._by_line[lineno] = self._by_line.get(lineno, frozenset()) | rules

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """True when ``rule_id`` is disabled on ``line`` (or file-wide)."""
        for ruleset in (self._file_wide, self._by_line.get(line, frozenset())):
            if rule_id in ruleset or SUPPRESS_ALL in ruleset:
                return True
        return False

    @property
    def has_directives(self) -> bool:
        return bool(self._by_line) or bool(self._file_wide)
