"""Project walker: source files -> parsed, named modules.

The walker accepts any mix of files and directories, parses each ``.py``
file once, and wraps it in a :class:`ModuleInfo` carrying the dotted module
name the import-graph and the path-scoped rules key on.  Module names are
derived from the path by anchoring at the last ``repro`` directory segment
(``src/repro/obs/top.py`` -> ``repro.obs.top``), which also gives fixture
trees in tests the same names as the real package without any installation.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.analysis.findings import ERROR, Finding
from repro.analysis.suppressions import SuppressionIndex

# Rule id reserved for files the walker itself cannot analyze.
PARSE_RULE_ID = "LINT000"

# Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})

# The package anchor used to derive dotted module names from paths.
PACKAGE_ANCHOR = "repro"


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: str  # as reported in findings
    name: str  # dotted module name, e.g. "repro.obs.metrics"
    tree: ast.Module
    source: str
    lines: List[str] = field(default_factory=list)
    suppressions: SuppressionIndex = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()
        if self.suppressions is None:
            self.suppressions = SuppressionIndex(self.lines)

    def in_package(self, prefix: str) -> bool:
        """True when this module is ``prefix`` or lives under it."""
        return self.name == prefix or self.name.startswith(prefix + ".")


def module_name_for(path: str, anchor: str = PACKAGE_ANCHOR) -> str:
    """Dotted module name of ``path``, anchored at the last ``anchor`` dir.

    A path with no ``anchor`` segment falls back to its bare stem, so rules
    that filter by package prefix simply never match it.
    """
    parts = os.path.normpath(path).split(os.sep)
    stem = parts[-1]
    if stem.endswith(".py"):
        stem = stem[: -len(".py")]
    anchor_index: Optional[int] = None
    for index, part in enumerate(parts[:-1]):
        if part == anchor:
            anchor_index = index
    if anchor_index is None:
        return anchor if stem == anchor else stem
    dotted = parts[anchor_index:-1]
    if stem != "__init__":
        dotted.append(stem)
    return ".".join(dotted)


def iter_source_files(paths: Sequence[str]) -> Iterator[str]:
    """Every ``.py`` file under the given files/directories, sorted."""
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        if not os.path.isdir(path):
            raise FileNotFoundError(f"no such file or directory: {path!r}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def load_modules(
    paths: Sequence[str], errors: Optional[List[Finding]] = None
) -> List[ModuleInfo]:
    """Parse every source file; unparsable files become ``LINT000`` findings."""
    modules: List[ModuleInfo] = []
    for path in iter_source_files(paths):
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            if errors is not None:
                line = getattr(error, "lineno", None) or 1
                errors.append(
                    Finding(
                        rule_id=PARSE_RULE_ID,
                        severity=ERROR,
                        path=path,
                        line=int(line),
                        col=0,
                        message=f"cannot analyze file: {error}",
                    )
                )
            continue
        modules.append(
            ModuleInfo(path=path, name=module_name_for(path), tree=tree, source=source)
        )
    return modules


@dataclass
class Project:
    """Everything a project-level rule can see (modules + import graph)."""

    modules: List[ModuleInfo]
    graph: "ImportGraph"  # noqa: F821  (repro.analysis.imports; avoids a cycle)

    def module(self, name: str) -> Optional[ModuleInfo]:
        for module in self.modules:
            if module.name == name:
                return module
        return None

    def iter_package(self, prefix: str) -> Iterable[ModuleInfo]:
        return (m for m in self.modules if m.in_package(prefix))
