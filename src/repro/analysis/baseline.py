"""Checked-in baseline: grandfathered findings that do not fail the build.

The baseline file (``.repro-lint-baseline.json`` at the repo root) holds
findings that predate a rule and are accepted as-is; CI fails only on
findings *not* in the baseline, so a new rule can land enforcing without a
flag-day cleanup.  Entries match on ``(rule, path, message)`` -- no line
numbers -- so unrelated edits do not invalidate them, and every entry
carries a mandatory ``justification`` string so the debt stays reviewable.

``repro-lint --write-baseline`` regenerates the file from the current
findings (filling ``justification`` with a TODO marker for new entries);
stale entries (nothing matches them any more) are reported so the baseline
only ever shrinks by deliberate edits.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.analysis.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".repro-lint-baseline.json"
TODO_JUSTIFICATION = "TODO: justify or fix this grandfathered finding"

BaselineKey = Tuple[str, str, str]


class Baseline:
    """The set of grandfathered findings, keyed by (rule, path, message)."""

    def __init__(self, entries: Dict[BaselineKey, str]):
        self.entries = dict(entries)

    @classmethod
    def empty(cls) -> "Baseline":
        return cls({})

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict) or "findings" not in payload:
            raise ValueError(f"baseline file {path!r} is not a baseline document")
        version = int(payload.get("version", BASELINE_VERSION))
        if version != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {version} in {path!r} "
                f"(this build reads version {BASELINE_VERSION})"
            )
        entries: Dict[BaselineKey, str] = {}
        for entry in payload["findings"]:
            key = (str(entry["rule"]), str(entry["path"]), str(entry["message"]))
            entries[key] = str(entry.get("justification", ""))
        return cls(entries)

    def save(self, path: str) -> None:
        payload: Dict[str, Any] = {
            "version": BASELINE_VERSION,
            "findings": [
                {
                    "rule": rule,
                    "path": file_path,
                    "message": message,
                    "justification": justification or TODO_JUSTIFICATION,
                }
                for (rule, file_path, message), justification in sorted(
                    self.entries.items()
                )
            ],
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    # -- matching -----------------------------------------------------------------
    def split(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[BaselineKey]]:
        """(new, baselined, stale-entries) for one lint run."""
        new: List[Finding] = []
        baselined: List[Finding] = []
        seen: set = set()
        for finding in findings:
            key = finding.baseline_key
            if key in self.entries:
                baselined.append(finding)
                seen.add(key)
            else:
                new.append(finding)
        stale = sorted(set(self.entries) - seen)
        return new, baselined, stale

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], previous: "Baseline" = None
    ) -> "Baseline":
        """A baseline covering ``findings``, keeping prior justifications."""
        prior = previous.entries if previous is not None else {}
        return cls(
            {
                finding.baseline_key: prior.get(finding.baseline_key, "")
                for finding in findings
            }
        )


def find_default_baseline(start_dir: str = ".") -> str:
    """The nearest ``.repro-lint-baseline.json`` walking up from ``start_dir``.

    Returns the conventional path in ``start_dir`` when none exists yet (so
    ``--write-baseline`` has somewhere to write).
    """
    current = os.path.abspath(start_dir)
    while True:
        candidate = os.path.join(current, DEFAULT_BASELINE_NAME)
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(current)
        if parent == current:
            return os.path.join(os.path.abspath(start_dir), DEFAULT_BASELINE_NAME)
        current = parent
