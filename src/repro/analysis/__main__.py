"""``python -m repro.analysis`` == the ``repro-lint`` console script."""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
