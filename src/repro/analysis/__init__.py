"""``repro.analysis`` -- the ``repro-lint`` static-analysis framework.

Six PRs of platform growth rest on conventions no runtime test can check
cheaply: randomness threads explicit Generators (DET001), every spec field
joins ``cache_key()`` or is deliberately exempt (KEY001), serde pairs are
exact inverses and event payloads are plain JSON (SER001), ``repro.obs``
observes but never steers (OBS001), worker-reachable global state holds a
lock (THR001), and ``repro.nn`` derives dtypes from the policy module
(DTY001).  This package makes those invariants machine-checked at lint
time:

* a :class:`~repro.analysis.visitor.Rule` protocol with a single-pass
  dispatching AST visitor (:class:`~repro.analysis.visitor.RuleDriver`),
* a project walker (:mod:`repro.analysis.project`) and a cross-module
  import graph (:mod:`repro.analysis.imports`) for layering rules,
* :class:`~repro.analysis.findings.Finding` records with severity /
  rule-id / file:line, text-, JSON- and GitHub-annotation reporters,
* inline ``# repro-lint: disable=RULE -- why`` suppressions and a
  checked-in baseline for grandfathered findings,
* the rule pack itself under :mod:`repro.analysis.rules`, one module per
  invariant.

Entry points: the ``repro-lint`` console script and
``python -m repro.analysis`` (both :func:`repro.analysis.cli.main`); CI
runs ``repro-lint src --format json`` and fails on any non-baselined
finding.
"""

from repro.analysis.baseline import Baseline
from repro.analysis.cli import main
from repro.analysis.findings import ERROR, WARNING, Finding
from repro.analysis.imports import ImportGraph, build_import_graph
from repro.analysis.project import ModuleInfo, Project, load_modules, module_name_for
from repro.analysis.rules import default_rules, rule_catalog
from repro.analysis.visitor import Rule, RuleDriver, apply_suppressions

__all__ = [
    "ERROR",
    "WARNING",
    "Baseline",
    "Finding",
    "ImportGraph",
    "ModuleInfo",
    "Project",
    "Rule",
    "RuleDriver",
    "apply_suppressions",
    "build_import_graph",
    "default_rules",
    "load_modules",
    "main",
    "module_name_for",
    "rule_catalog",
]
